//! The wire protocol: length-prefixed binary frames over TCP.
//!
//! Hand-rolled (the build environment has no registry access, so the
//! codec lives here like the vendored shims) and deliberately simple:
//!
//! ```text
//! frame    := len:u32-LE payload            (len = payload length)
//! payload  := opcode:u8 body
//! ```
//!
//! Requests cover the whole [`Engine`](scavenger::Engine) trait surface
//! — point ops, batches, bounded scans (streamed back in chunked
//! frames), snapshot open/read/close against the server's pin table,
//! and maintenance (flush, GC, stats, shutdown). Strings and blobs are
//! varint-length-prefixed via the same `scavenger-util` coding helpers
//! the storage formats use.
//!
//! Decoding is defensive by construction: a frame length above the
//! negotiated cap is rejected **before** any allocation, unknown
//! opcodes and trailing bytes are protocol errors, and every error is
//! reported as a typed [`WireCode`] on an [`Response::Err`] frame —
//! never a dropped connection, never a panic (the codec round-trip and
//! adversarial-input property tests in this module enforce that).

use scavenger_util::coding::{
    get_fixed64, get_length_prefixed_slice, get_varint32, get_varint64, put_fixed64,
    put_length_prefixed_slice, put_varint32, put_varint64,
};
use scavenger_util::{Error, Result};
use std::io::{Read, Write};

/// Default cap on a single frame's payload (16 MiB). Guards against a
/// hostile or corrupt length prefix causing a huge allocation.
pub const DEFAULT_MAX_FRAME: usize = 16 << 20;

/// Typed error codes carried on [`Response::Err`] frames.
///
/// The first block mirrors [`Error`]'s variants one-to-one; the second
/// block is protocol/service conditions that have no engine
/// counterpart. `DEGRADED` is the typed surfacing of
/// [`Error::ReadOnlyMode`]: a degraded engine answers writes with it
/// instead of dropping the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum WireCode {
    /// Key or resource not found ([`Error::NotFound`]).
    NotFound = 1,
    /// Persistent structure failed validation ([`Error::Corruption`]).
    Corruption = 2,
    /// Environment / I/O failure ([`Error::Io`]).
    Io = 3,
    /// Caller misuse ([`Error::InvalidArgument`]).
    InvalidArgument = 4,
    /// Engine invariant violation ([`Error::Internal`]).
    Internal = 5,
    /// Engine is in read-only degraded mode ([`Error::ReadOnlyMode`]).
    Degraded = 6,
    /// Malformed frame: bad length, unknown opcode, trailing bytes.
    Protocol = 7,
    /// Request rejected by the per-connection or global token bucket.
    RateLimited = 8,
    /// Connection rejected at accept time: server at its connection cap.
    ConnLimit = 9,
    /// Snapshot id unknown — never opened, closed, or expired by TTL.
    PinExpired = 10,
    /// Server is draining: it stopped taking new requests for shutdown.
    ShuttingDown = 11,
    /// Optimistic transaction failed commit-time validation
    /// ([`Error::TxnConflict`]): nothing was written, the client
    /// re-runs the transaction.
    TxnConflict = 12,
}

/// All wire codes, for iteration in tests.
pub const ALL_WIRE_CODES: [WireCode; 12] = [
    WireCode::NotFound,
    WireCode::Corruption,
    WireCode::Io,
    WireCode::InvalidArgument,
    WireCode::Internal,
    WireCode::Degraded,
    WireCode::Protocol,
    WireCode::RateLimited,
    WireCode::ConnLimit,
    WireCode::PinExpired,
    WireCode::ShuttingDown,
    WireCode::TxnConflict,
];

impl WireCode {
    /// Stable uppercase tag, embedded in client-side error messages so
    /// the precise code survives the trip through [`Error`].
    pub fn tag(self) -> &'static str {
        match self {
            WireCode::NotFound => "NOT_FOUND",
            WireCode::Corruption => "CORRUPTION",
            WireCode::Io => "IO",
            WireCode::InvalidArgument => "INVALID_ARGUMENT",
            WireCode::Internal => "INTERNAL",
            WireCode::Degraded => "DEGRADED",
            WireCode::Protocol => "PROTOCOL",
            WireCode::RateLimited => "RATE_LIMITED",
            WireCode::ConnLimit => "CONN_LIMIT",
            WireCode::PinExpired => "PIN_EXPIRED",
            WireCode::ShuttingDown => "SHUTTING_DOWN",
            WireCode::TxnConflict => "TXN_CONFLICT",
        }
    }

    /// Decode a wire byte.
    pub fn from_u8(v: u8) -> Option<WireCode> {
        ALL_WIRE_CODES.into_iter().find(|c| *c as u8 == v)
    }

    /// Map an engine [`Error`] to its wire code.
    ///
    /// The match destructures every variant with no wildcard arm — the
    /// same pattern as `SpaceBreakdown::accumulate` — so adding an
    /// `Error` variant is a compile error here until someone decides
    /// its wire code, rather than a silent fall-through to a generic
    /// one.
    pub fn from_error(err: &Error) -> WireCode {
        match err {
            Error::NotFound(_) => WireCode::NotFound,
            Error::Corruption(_) => WireCode::Corruption,
            Error::Io(_) => WireCode::Io,
            Error::InvalidArgument(_) => WireCode::InvalidArgument,
            Error::Internal(_) => WireCode::Internal,
            Error::ReadOnlyMode(_) => WireCode::Degraded,
            Error::TxnConflict(_) => WireCode::TxnConflict,
        }
    }

    /// Reconstruct a typed [`Error`] client-side. Engine-mirroring
    /// codes map back to their variant (so `err.is_read_only()` works
    /// across the wire); protocol/service codes become
    /// [`Error::Io`]-category errors. Every message is prefixed with
    /// `[wire:TAG]` so [`WireCode::of`] can recover the exact code.
    pub fn to_error(self, message: &str) -> Error {
        let msg = format!("[wire:{}] {message}", self.tag());
        match self {
            WireCode::NotFound => Error::NotFound(msg),
            WireCode::Corruption => Error::Corruption(msg),
            WireCode::Io => Error::Io(msg),
            WireCode::InvalidArgument | WireCode::Protocol => Error::InvalidArgument(msg),
            WireCode::Internal => Error::Internal(msg),
            WireCode::Degraded => Error::ReadOnlyMode(msg),
            WireCode::TxnConflict => Error::TxnConflict(msg),
            WireCode::RateLimited
            | WireCode::ConnLimit
            | WireCode::PinExpired
            | WireCode::ShuttingDown => Error::Io(msg),
        }
    }

    /// Recover the wire code from an [`Error`] produced by
    /// [`to_error`](WireCode::to_error), if any.
    pub fn of(err: &Error) -> Option<WireCode> {
        let msg = match err {
            Error::NotFound(m)
            | Error::Corruption(m)
            | Error::Io(m)
            | Error::InvalidArgument(m)
            | Error::Internal(m)
            | Error::ReadOnlyMode(m)
            | Error::TxnConflict(m) => m,
        };
        let rest = msg.strip_prefix("[wire:")?;
        let end = rest.find(']')?;
        ALL_WIRE_CODES.into_iter().find(|c| c.tag() == &rest[..end])
    }
}

fn perr(msg: impl Into<String>) -> Error {
    Error::InvalidArgument(format!("protocol: {}", msg.into()))
}

/// One operation inside a [`Request::Write`] batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// Insert or overwrite `key`.
    Put {
        /// User key.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Delete `key`.
    Delete {
        /// User key.
        key: Vec<u8>,
    },
}

/// A client request frame. Covers the full `Engine` trait surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Point lookup, optionally through a pinned snapshot.
    Get {
        /// Server-side snapshot id from [`Response::SnapId`], or `None`
        /// for the latest state.
        snap: Option<u64>,
        /// User key.
        key: Vec<u8>,
    },
    /// Insert or overwrite one key.
    Put {
        /// User key.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
        /// Require the commit to be fsync-covered before replying
        /// (rides the engine's group-commit path: one fsync may cover
        /// many concurrent writers).
        sync: bool,
    },
    /// Delete one key.
    Delete {
        /// User key.
        key: Vec<u8>,
        /// Require the commit to be fsync-covered before replying.
        sync: bool,
    },
    /// Atomic batch (per shard — the engine's `write_with` contract).
    Write {
        /// Operations applied as one batch.
        ops: Vec<BatchOp>,
        /// Require the commit to be fsync-covered before replying.
        sync: bool,
    },
    /// Bounded range scan, streamed back as [`Response::ScanChunk`]
    /// frames (the last one has `last = true`).
    Scan {
        /// Server-side snapshot id, or `None` for the latest state.
        snap: Option<u64>,
        /// Inclusive lower bound.
        lo: Vec<u8>,
        /// Exclusive upper bound (`None` = unbounded).
        hi: Option<Vec<u8>>,
        /// Maximum entries to return (`0` = unlimited).
        limit: u32,
    },
    /// Open a server-side snapshot; pinned until closed or TTL-expired.
    SnapOpen,
    /// Close a server-side snapshot.
    SnapClose {
        /// Id from [`Response::SnapId`].
        id: u64,
    },
    /// Flush memtables and drain background work.
    Flush,
    /// Run one GC pass.
    RunGc,
    /// Engine + server statistics in Prometheus exposition text.
    Stats,
    /// Begin graceful shutdown: stop accepting, drain in-flight
    /// requests, drop the pin table, flush, exit.
    Shutdown,
    /// Begin a server-side optimistic transaction; answered with
    /// [`Response::TxnId`]. The transaction lives in the server's
    /// transaction table until committed, rolled back, or TTL-expired.
    TxnBegin,
    /// Read a key inside a transaction (records it in the read set).
    TxnGet {
        /// Id from [`Response::TxnId`].
        txn: u64,
        /// User key.
        key: Vec<u8>,
    },
    /// Buffer a put inside a transaction.
    TxnPut {
        /// Id from [`Response::TxnId`].
        txn: u64,
        /// User key.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Buffer a delete inside a transaction.
    TxnDelete {
        /// Id from [`Response::TxnId`].
        txn: u64,
        /// User key.
        key: Vec<u8>,
    },
    /// Validate and commit a transaction. Answers
    /// [`Response::Written`] on success, or a
    /// [`WireCode::TxnConflict`] error (nothing written) on validation
    /// failure. Either way the transaction id is consumed.
    TxnCommit {
        /// Id from [`Response::TxnId`].
        txn: u64,
        /// Require the commit to be fsync-covered before replying.
        sync: bool,
    },
    /// Discard a transaction without writing.
    TxnRollback {
        /// Id from [`Response::TxnId`].
        txn: u64,
    },
    /// Open a server-side change stream; answered with
    /// [`Response::StreamId`]. The stream lives in the server's pin
    /// table until closed or TTL-expired, and pins the WAL history its
    /// cursor still needs.
    SubscribeChanges {
        /// Where the subscription starts.
        from: SubscribeSpec,
    },
    /// Deliver pending changes from a stream, as chunked
    /// [`Response::ChangeChunk`] frames (the last one has
    /// `last = true`). An empty final chunk means the stream is caught
    /// up, not ended.
    PollChanges {
        /// Id from [`Response::StreamId`].
        stream: u64,
        /// Maximum events to deliver across all chunks (`0` = server
        /// default).
        max: u32,
    },
    /// Close a change stream, releasing its pinned WAL history.
    CloseStream {
        /// Id from [`Response::StreamId`].
        stream: u64,
    },
}

/// Where a [`Request::SubscribeChanges`] starts — the wire form of
/// [`scavenger::SubscribeFrom`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscribeSpec {
    /// The oldest retained change.
    Oldest,
    /// The current commit head (only future changes).
    Latest,
    /// An encoded [`scavenger::ResumeToken`]
    /// captured from an earlier stream's chunks.
    Token(Vec<u8>),
}

/// One committed change event on the wire — the serialized form of
/// [`scavenger::ChangeRecord`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireChange {
    /// Shard the write committed on (0 on a single-`Db` server).
    pub shard: u32,
    /// Sequence number in the shard's commit order.
    pub seq: u64,
    /// User key.
    pub key: Vec<u8>,
    /// `Some(value)` for a put, `None` for a delete.
    pub value: Option<Vec<u8>>,
    /// 2PC transaction id when the write was a multi-shard commit.
    pub txn: Option<u64>,
}

/// A server response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Get`].
    Value {
        /// The value, or `None` if the key is absent/deleted.
        value: Option<Vec<u8>>,
    },
    /// Generic success (flush, snapshot close, shutdown ack).
    Done,
    /// Reply to a write ([`Request::Put`] / [`Request::Delete`] /
    /// [`Request::Write`]): the engine's
    /// [`WriteReceipt`](scavenger::WriteReceipt) on the wire.
    Written {
        /// Highest sequence number the write landed at (max across
        /// shards on a sharded engine).
        seq: u64,
        /// Writer batches sharing the commit group (max across shards).
        group_len: u64,
        /// True if the commit was covered by an fsync before replying.
        synced: bool,
    },
    /// One chunk of a streamed scan.
    ScanChunk {
        /// Key/value pairs in key order.
        entries: Vec<(Vec<u8>, Vec<u8>)>,
        /// True on the final chunk of this scan.
        last: bool,
    },
    /// Reply to [`Request::SnapOpen`].
    SnapId {
        /// Server-side snapshot id for subsequent pinned reads.
        id: u64,
    },
    /// Reply to [`Request::TxnBegin`].
    TxnId {
        /// Server-side transaction id for subsequent txn ops.
        id: u64,
    },
    /// Reply to [`Request::Stats`]: Prometheus exposition text.
    Stats {
        /// The rendered metrics page.
        text: String,
    },
    /// Reply to [`Request::RunGc`].
    GcDone {
        /// GC jobs that ran (one per shard at most).
        jobs: u32,
        /// Value files collected.
        files_collected: u64,
        /// Valid records rewritten.
        records_rewritten: u64,
        /// Garbage bytes reclaimed.
        bytes_reclaimed: u64,
    },
    /// Reply to [`Request::SubscribeChanges`].
    StreamId {
        /// Server-side change-stream id for subsequent polls.
        id: u64,
    },
    /// One chunk of a streamed [`Request::PollChanges`] reply.
    ChangeChunk {
        /// Committed change events, in stream order.
        events: Vec<WireChange>,
        /// Resume token capturing the stream position *after* this
        /// chunk — persist it to survive disconnects.
        resume: Vec<u8>,
        /// How far the stream still trails the commit head, in
        /// sequence numbers.
        lag: u64,
        /// True on the final chunk of this poll.
        last: bool,
    },
    /// Typed failure.
    Err {
        /// The wire code.
        code: WireCode,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Build an [`Response::Err`] from an engine error.
    pub fn from_error(err: &Error) -> Response {
        Response::Err {
            code: WireCode::from_error(err),
            message: err.to_string(),
        }
    }

    /// Build an [`Response::Err`] from an explicit code.
    pub fn error(code: WireCode, message: impl Into<String>) -> Response {
        Response::Err {
            code,
            message: message.into(),
        }
    }
}

// ---------------- opcodes ----------------

const OP_PING: u8 = 0x01;
const OP_GET: u8 = 0x02;
const OP_PUT: u8 = 0x03;
const OP_DELETE: u8 = 0x04;
const OP_WRITE: u8 = 0x05;
const OP_SCAN: u8 = 0x06;
const OP_SNAP_OPEN: u8 = 0x07;
const OP_SNAP_CLOSE: u8 = 0x08;
const OP_FLUSH: u8 = 0x09;
const OP_RUN_GC: u8 = 0x0a;
const OP_STATS: u8 = 0x0b;
const OP_SHUTDOWN: u8 = 0x0c;
const OP_TXN_BEGIN: u8 = 0x0d;
const OP_TXN_GET: u8 = 0x0e;
const OP_TXN_PUT: u8 = 0x0f;
const OP_TXN_DELETE: u8 = 0x10;
const OP_TXN_COMMIT: u8 = 0x11;
const OP_TXN_ROLLBACK: u8 = 0x12;
const OP_SUB_CHANGES: u8 = 0x13;
const OP_POLL_CHANGES: u8 = 0x14;
const OP_CLOSE_STREAM: u8 = 0x15;

const OP_PONG: u8 = 0x81;
const OP_VALUE: u8 = 0x82;
const OP_DONE: u8 = 0x83;
const OP_SCAN_CHUNK: u8 = 0x84;
const OP_SNAP_ID: u8 = 0x85;
const OP_STATS_TEXT: u8 = 0x86;
const OP_GC_DONE: u8 = 0x87;
const OP_WRITTEN: u8 = 0x88;
const OP_TXN_ID: u8 = 0x89;
const OP_STREAM_ID: u8 = 0x8a;
const OP_CHANGE_CHUNK: u8 = 0x8b;
const OP_ERR: u8 = 0xff;

const SUB_OLDEST: u8 = 0;
const SUB_LATEST: u8 = 1;
const SUB_TOKEN: u8 = 2;

const BATCH_PUT: u8 = 0;
const BATCH_DELETE: u8 = 1;

fn put_opt_slice(dst: &mut Vec<u8>, s: &Option<Vec<u8>>) {
    match s {
        None => dst.push(0),
        Some(s) => {
            dst.push(1);
            put_length_prefixed_slice(dst, s);
        }
    }
}

fn get_u8(src: &mut &[u8]) -> Result<u8> {
    if src.is_empty() {
        return Err(perr("truncated body"));
    }
    let v = src[0];
    *src = &src[1..];
    Ok(v)
}

fn get_bool(src: &mut &[u8]) -> Result<bool> {
    match get_u8(src)? {
        0 => Ok(false),
        1 => Ok(true),
        t => Err(perr(format!("bad bool tag {t}"))),
    }
}

fn get_opt_slice(src: &mut &[u8]) -> Result<Option<Vec<u8>>> {
    match get_u8(src)? {
        0 => Ok(None),
        1 => Ok(Some(get_length_prefixed_slice(src)?.to_vec())),
        t => Err(perr(format!("bad option tag {t}"))),
    }
}

fn put_opt_u64(dst: &mut Vec<u8>, v: &Option<u64>) {
    match v {
        None => dst.push(0),
        Some(v) => {
            dst.push(1);
            put_fixed64(dst, *v);
        }
    }
}

fn get_opt_u64(src: &mut &[u8]) -> Result<Option<u64>> {
    match get_u8(src)? {
        0 => Ok(None),
        1 => Ok(Some(get_fixed64(src)?)),
        t => Err(perr(format!("bad option tag {t}"))),
    }
}

impl Request {
    /// Encode into a frame payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Ping => out.push(OP_PING),
            Request::Get { snap, key } => {
                out.push(OP_GET);
                put_opt_u64(&mut out, snap);
                put_length_prefixed_slice(&mut out, key);
            }
            Request::Put { key, value, sync } => {
                out.push(OP_PUT);
                out.push(u8::from(*sync));
                put_length_prefixed_slice(&mut out, key);
                put_length_prefixed_slice(&mut out, value);
            }
            Request::Delete { key, sync } => {
                out.push(OP_DELETE);
                out.push(u8::from(*sync));
                put_length_prefixed_slice(&mut out, key);
            }
            Request::Write { ops, sync } => {
                out.push(OP_WRITE);
                out.push(u8::from(*sync));
                put_varint32(&mut out, ops.len() as u32);
                for op in ops {
                    match op {
                        BatchOp::Put { key, value } => {
                            out.push(BATCH_PUT);
                            put_length_prefixed_slice(&mut out, key);
                            put_length_prefixed_slice(&mut out, value);
                        }
                        BatchOp::Delete { key } => {
                            out.push(BATCH_DELETE);
                            put_length_prefixed_slice(&mut out, key);
                        }
                    }
                }
            }
            Request::Scan {
                snap,
                lo,
                hi,
                limit,
            } => {
                out.push(OP_SCAN);
                put_opt_u64(&mut out, snap);
                put_length_prefixed_slice(&mut out, lo);
                put_opt_slice(&mut out, hi);
                put_varint32(&mut out, *limit);
            }
            Request::SnapOpen => out.push(OP_SNAP_OPEN),
            Request::SnapClose { id } => {
                out.push(OP_SNAP_CLOSE);
                put_fixed64(&mut out, *id);
            }
            Request::Flush => out.push(OP_FLUSH),
            Request::RunGc => out.push(OP_RUN_GC),
            Request::Stats => out.push(OP_STATS),
            Request::Shutdown => out.push(OP_SHUTDOWN),
            Request::TxnBegin => out.push(OP_TXN_BEGIN),
            Request::TxnGet { txn, key } => {
                out.push(OP_TXN_GET);
                put_fixed64(&mut out, *txn);
                put_length_prefixed_slice(&mut out, key);
            }
            Request::TxnPut { txn, key, value } => {
                out.push(OP_TXN_PUT);
                put_fixed64(&mut out, *txn);
                put_length_prefixed_slice(&mut out, key);
                put_length_prefixed_slice(&mut out, value);
            }
            Request::TxnDelete { txn, key } => {
                out.push(OP_TXN_DELETE);
                put_fixed64(&mut out, *txn);
                put_length_prefixed_slice(&mut out, key);
            }
            Request::TxnCommit { txn, sync } => {
                out.push(OP_TXN_COMMIT);
                put_fixed64(&mut out, *txn);
                out.push(u8::from(*sync));
            }
            Request::TxnRollback { txn } => {
                out.push(OP_TXN_ROLLBACK);
                put_fixed64(&mut out, *txn);
            }
            Request::SubscribeChanges { from } => {
                out.push(OP_SUB_CHANGES);
                match from {
                    SubscribeSpec::Oldest => out.push(SUB_OLDEST),
                    SubscribeSpec::Latest => out.push(SUB_LATEST),
                    SubscribeSpec::Token(t) => {
                        out.push(SUB_TOKEN);
                        put_length_prefixed_slice(&mut out, t);
                    }
                }
            }
            Request::PollChanges { stream, max } => {
                out.push(OP_POLL_CHANGES);
                put_fixed64(&mut out, *stream);
                put_varint32(&mut out, *max);
            }
            Request::CloseStream { stream } => {
                out.push(OP_CLOSE_STREAM);
                put_fixed64(&mut out, *stream);
            }
        }
        out
    }

    /// Decode a frame payload. Unknown opcodes, truncated bodies, and
    /// trailing bytes are all [`WireCode::Protocol`]-class errors.
    pub fn decode(payload: &[u8]) -> Result<Request> {
        let mut src = payload;
        let op = get_u8(&mut src)?;
        let req = match op {
            OP_PING => Request::Ping,
            OP_GET => Request::Get {
                snap: get_opt_u64(&mut src)?,
                key: get_length_prefixed_slice(&mut src)?.to_vec(),
            },
            OP_PUT => {
                let sync = get_bool(&mut src)?;
                Request::Put {
                    key: get_length_prefixed_slice(&mut src)?.to_vec(),
                    value: get_length_prefixed_slice(&mut src)?.to_vec(),
                    sync,
                }
            }
            OP_DELETE => {
                let sync = get_bool(&mut src)?;
                Request::Delete {
                    key: get_length_prefixed_slice(&mut src)?.to_vec(),
                    sync,
                }
            }
            OP_WRITE => {
                let sync = get_bool(&mut src)?;
                let n = get_varint32(&mut src)?;
                // Cap pre-allocation by what the body could possibly
                // hold (1 byte per op minimum) — a lying count must not
                // drive a huge reserve.
                let mut ops = Vec::with_capacity((n as usize).min(src.len()));
                for _ in 0..n {
                    match get_u8(&mut src)? {
                        BATCH_PUT => ops.push(BatchOp::Put {
                            key: get_length_prefixed_slice(&mut src)?.to_vec(),
                            value: get_length_prefixed_slice(&mut src)?.to_vec(),
                        }),
                        BATCH_DELETE => ops.push(BatchOp::Delete {
                            key: get_length_prefixed_slice(&mut src)?.to_vec(),
                        }),
                        t => return Err(perr(format!("bad batch op tag {t}"))),
                    }
                }
                Request::Write { ops, sync }
            }
            OP_SCAN => Request::Scan {
                snap: get_opt_u64(&mut src)?,
                lo: get_length_prefixed_slice(&mut src)?.to_vec(),
                hi: get_opt_slice(&mut src)?,
                limit: get_varint32(&mut src)?,
            },
            OP_SNAP_OPEN => Request::SnapOpen,
            OP_SNAP_CLOSE => Request::SnapClose {
                id: get_fixed64(&mut src)?,
            },
            OP_FLUSH => Request::Flush,
            OP_RUN_GC => Request::RunGc,
            OP_STATS => Request::Stats,
            OP_SHUTDOWN => Request::Shutdown,
            OP_TXN_BEGIN => Request::TxnBegin,
            OP_TXN_GET => Request::TxnGet {
                txn: get_fixed64(&mut src)?,
                key: get_length_prefixed_slice(&mut src)?.to_vec(),
            },
            OP_TXN_PUT => Request::TxnPut {
                txn: get_fixed64(&mut src)?,
                key: get_length_prefixed_slice(&mut src)?.to_vec(),
                value: get_length_prefixed_slice(&mut src)?.to_vec(),
            },
            OP_TXN_DELETE => Request::TxnDelete {
                txn: get_fixed64(&mut src)?,
                key: get_length_prefixed_slice(&mut src)?.to_vec(),
            },
            OP_TXN_COMMIT => Request::TxnCommit {
                txn: get_fixed64(&mut src)?,
                sync: get_bool(&mut src)?,
            },
            OP_TXN_ROLLBACK => Request::TxnRollback {
                txn: get_fixed64(&mut src)?,
            },
            OP_SUB_CHANGES => Request::SubscribeChanges {
                from: match get_u8(&mut src)? {
                    SUB_OLDEST => SubscribeSpec::Oldest,
                    SUB_LATEST => SubscribeSpec::Latest,
                    SUB_TOKEN => {
                        SubscribeSpec::Token(get_length_prefixed_slice(&mut src)?.to_vec())
                    }
                    t => return Err(perr(format!("bad subscribe tag {t}"))),
                },
            },
            OP_POLL_CHANGES => Request::PollChanges {
                stream: get_fixed64(&mut src)?,
                max: get_varint32(&mut src)?,
            },
            OP_CLOSE_STREAM => Request::CloseStream {
                stream: get_fixed64(&mut src)?,
            },
            op => return Err(perr(format!("unknown request opcode {op:#04x}"))),
        };
        if !src.is_empty() {
            return Err(perr(format!("{} trailing bytes", src.len())));
        }
        Ok(req)
    }

    /// Short label for logging/metrics.
    pub fn label(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Get { .. } => "get",
            Request::Put { .. } => "put",
            Request::Delete { .. } => "delete",
            Request::Write { .. } => "write",
            Request::Scan { .. } => "scan",
            Request::SnapOpen => "snap_open",
            Request::SnapClose { .. } => "snap_close",
            Request::Flush => "flush",
            Request::RunGc => "run_gc",
            Request::Stats => "stats",
            Request::Shutdown => "shutdown",
            Request::TxnBegin => "txn_begin",
            Request::TxnGet { .. } => "txn_get",
            Request::TxnPut { .. } => "txn_put",
            Request::TxnDelete { .. } => "txn_delete",
            Request::TxnCommit { .. } => "txn_commit",
            Request::TxnRollback { .. } => "txn_rollback",
            Request::SubscribeChanges { .. } => "subscribe_changes",
            Request::PollChanges { .. } => "poll_changes",
            Request::CloseStream { .. } => "close_stream",
        }
    }
}

impl Response {
    /// Encode into a frame payload (opcode + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Pong => out.push(OP_PONG),
            Response::Value { value } => {
                out.push(OP_VALUE);
                put_opt_slice(&mut out, value);
            }
            Response::Done => out.push(OP_DONE),
            Response::Written {
                seq,
                group_len,
                synced,
            } => {
                out.push(OP_WRITTEN);
                put_varint64(&mut out, *seq);
                put_varint64(&mut out, *group_len);
                out.push(u8::from(*synced));
            }
            Response::ScanChunk { entries, last } => {
                out.push(OP_SCAN_CHUNK);
                out.push(u8::from(*last));
                put_varint32(&mut out, entries.len() as u32);
                for (k, v) in entries {
                    put_length_prefixed_slice(&mut out, k);
                    put_length_prefixed_slice(&mut out, v);
                }
            }
            Response::SnapId { id } => {
                out.push(OP_SNAP_ID);
                put_fixed64(&mut out, *id);
            }
            Response::TxnId { id } => {
                out.push(OP_TXN_ID);
                put_fixed64(&mut out, *id);
            }
            Response::Stats { text } => {
                out.push(OP_STATS_TEXT);
                put_length_prefixed_slice(&mut out, text.as_bytes());
            }
            Response::GcDone {
                jobs,
                files_collected,
                records_rewritten,
                bytes_reclaimed,
            } => {
                out.push(OP_GC_DONE);
                put_varint32(&mut out, *jobs);
                put_varint64(&mut out, *files_collected);
                put_varint64(&mut out, *records_rewritten);
                put_varint64(&mut out, *bytes_reclaimed);
            }
            Response::StreamId { id } => {
                out.push(OP_STREAM_ID);
                put_fixed64(&mut out, *id);
            }
            Response::ChangeChunk {
                events,
                resume,
                lag,
                last,
            } => {
                out.push(OP_CHANGE_CHUNK);
                out.push(u8::from(*last));
                put_varint64(&mut out, *lag);
                put_length_prefixed_slice(&mut out, resume);
                put_varint32(&mut out, events.len() as u32);
                for e in events {
                    put_varint32(&mut out, e.shard);
                    put_varint64(&mut out, e.seq);
                    put_length_prefixed_slice(&mut out, &e.key);
                    put_opt_slice(&mut out, &e.value);
                    put_opt_u64(&mut out, &e.txn);
                }
            }
            Response::Err { code, message } => {
                out.push(OP_ERR);
                out.push(*code as u8);
                put_length_prefixed_slice(&mut out, message.as_bytes());
            }
        }
        out
    }

    /// Decode a frame payload.
    pub fn decode(payload: &[u8]) -> Result<Response> {
        let mut src = payload;
        let op = get_u8(&mut src)?;
        let resp = match op {
            OP_PONG => Response::Pong,
            OP_VALUE => Response::Value {
                value: get_opt_slice(&mut src)?,
            },
            OP_DONE => Response::Done,
            OP_WRITTEN => Response::Written {
                seq: get_varint64(&mut src)?,
                group_len: get_varint64(&mut src)?,
                synced: get_bool(&mut src)?,
            },
            OP_SCAN_CHUNK => {
                let last = get_bool(&mut src)?;
                let n = get_varint32(&mut src)?;
                let mut entries = Vec::with_capacity((n as usize).min(src.len()));
                for _ in 0..n {
                    let k = get_length_prefixed_slice(&mut src)?.to_vec();
                    let v = get_length_prefixed_slice(&mut src)?.to_vec();
                    entries.push((k, v));
                }
                Response::ScanChunk { entries, last }
            }
            OP_SNAP_ID => Response::SnapId {
                id: get_fixed64(&mut src)?,
            },
            OP_TXN_ID => Response::TxnId {
                id: get_fixed64(&mut src)?,
            },
            OP_STATS_TEXT => Response::Stats {
                text: String::from_utf8(get_length_prefixed_slice(&mut src)?.to_vec())
                    .map_err(|_| perr("stats text is not utf-8"))?,
            },
            OP_GC_DONE => Response::GcDone {
                jobs: get_varint32(&mut src)?,
                files_collected: get_varint64(&mut src)?,
                records_rewritten: get_varint64(&mut src)?,
                bytes_reclaimed: get_varint64(&mut src)?,
            },
            OP_STREAM_ID => Response::StreamId {
                id: get_fixed64(&mut src)?,
            },
            OP_CHANGE_CHUNK => {
                let last = get_bool(&mut src)?;
                let lag = get_varint64(&mut src)?;
                let resume = get_length_prefixed_slice(&mut src)?.to_vec();
                let n = get_varint32(&mut src)?;
                let mut events = Vec::with_capacity((n as usize).min(src.len()));
                for _ in 0..n {
                    events.push(WireChange {
                        shard: get_varint32(&mut src)?,
                        seq: get_varint64(&mut src)?,
                        key: get_length_prefixed_slice(&mut src)?.to_vec(),
                        value: get_opt_slice(&mut src)?,
                        txn: get_opt_u64(&mut src)?,
                    });
                }
                Response::ChangeChunk {
                    events,
                    resume,
                    lag,
                    last,
                }
            }
            OP_ERR => {
                let code_byte = get_u8(&mut src)?;
                let code = WireCode::from_u8(code_byte)
                    .ok_or_else(|| perr(format!("unknown wire code {code_byte}")))?;
                Response::Err {
                    code,
                    message: String::from_utf8(get_length_prefixed_slice(&mut src)?.to_vec())
                        .map_err(|_| perr("error message is not utf-8"))?,
                }
            }
            op => return Err(perr(format!("unknown response opcode {op:#04x}"))),
        };
        if !src.is_empty() {
            return Err(perr(format!("{} trailing bytes", src.len())));
        }
        Ok(resp)
    }
}

// ---------------- framing ----------------

/// Write one frame (`len` prefix + payload) to `w`. Header and payload
/// go out in a single write so a small response is one packet (two
/// writes would trip Nagle + delayed-ACK and cost ~40ms per request).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<()> {
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    Ok(())
}

/// Read one frame from `r`, blocking until complete. Returns `None` on
/// clean EOF at a frame boundary; EOF mid-frame is a protocol error.
/// A length prefix above `max_frame` is rejected before any allocation.
pub fn read_frame(r: &mut impl Read, max_frame: usize) -> Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => return Err(perr("eof inside frame header")),
            Ok(n) => filled += n,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > max_frame {
        return Err(perr(format!(
            "frame of {len} bytes exceeds cap {max_frame}"
        )));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            perr("eof inside frame body")
        } else {
            e.into()
        }
    })?;
    Ok(Some(payload))
}

/// Incremental frame assembler for non-blocking reads: feed raw bytes
/// with [`extend`](FrameBuffer::extend), pop complete frames with
/// [`pop`](FrameBuffer::pop). Rejects an oversized length prefix as
/// soon as the 4-byte header arrives, before buffering its body.
pub struct FrameBuffer {
    buf: Vec<u8>,
    max_frame: usize,
}

impl FrameBuffer {
    /// Create an assembler with the given frame cap.
    pub fn new(max_frame: usize) -> FrameBuffer {
        FrameBuffer {
            buf: Vec::new(),
            max_frame,
        }
    }

    /// Feed raw bytes from the socket.
    pub fn extend(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes currently buffered (incomplete frame data).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Pop the next complete frame payload, if one is buffered.
    pub fn pop(&mut self) -> Result<Option<Vec<u8>>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if len > self.max_frame {
            return Err(perr(format!(
                "frame of {len} bytes exceeds cap {}",
                self.max_frame
            )));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn wire_code_error_mapping_round_trips() {
        let errs = [
            Error::not_found("k"),
            Error::corruption("bad"),
            Error::io("disk"),
            Error::invalid_argument("opt"),
            Error::internal("bug"),
            Error::read_only("degraded"),
            Error::txn_conflict("k1 moved"),
        ];
        for err in &errs {
            let code = WireCode::from_error(err);
            let back = code.to_error("msg");
            assert_eq!(
                WireCode::from_error(&back),
                code,
                "error {err:?} did not round-trip through {code:?}"
            );
            assert_eq!(WireCode::of(&back), Some(code));
        }
        // ReadOnlyMode survives as a typed DEGRADED error end to end.
        let degraded = WireCode::from_error(&Error::read_only("x"));
        assert_eq!(degraded, WireCode::Degraded);
        assert!(degraded.to_error("x").is_read_only());
        // TxnConflict survives typed too, so client-side retry loops
        // can branch on `is_txn_conflict()` across the wire.
        let conflict = WireCode::from_error(&Error::txn_conflict("x"));
        assert_eq!(conflict, WireCode::TxnConflict);
        assert!(conflict.to_error("x").is_txn_conflict());
    }

    #[test]
    fn wire_codes_are_distinct_and_decodable() {
        let mut bytes = std::collections::HashSet::new();
        let mut tags = std::collections::HashSet::new();
        for c in ALL_WIRE_CODES {
            assert!(bytes.insert(c as u8), "duplicate byte for {c:?}");
            assert!(tags.insert(c.tag()), "duplicate tag for {c:?}");
            assert_eq!(WireCode::from_u8(c as u8), Some(c));
        }
        assert_eq!(WireCode::from_u8(0), None);
        assert_eq!(WireCode::from_u8(200), None);
    }

    #[test]
    fn frame_round_trip_via_reader() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, 1024).unwrap().unwrap(), b"");
        assert!(read_frame(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn oversized_length_rejected_before_allocation() {
        // 4 GiB length prefix, no body: must error out without trying
        // to allocate or read 4 GiB.
        let wire = u32::MAX.to_le_bytes();
        let mut r = &wire[..];
        let err = read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap_err();
        assert!(err.to_string().contains("exceeds cap"), "{err}");

        let mut fb = FrameBuffer::new(DEFAULT_MAX_FRAME);
        fb.extend(&wire);
        assert!(fb.pop().is_err());
    }

    #[test]
    fn truncated_frames_error_cleanly() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        // Header cut mid-way.
        let mut r = &wire[..2];
        assert!(read_frame(&mut r, 1024).is_err());
        // Body cut mid-way.
        let mut r = &wire[..6];
        assert!(read_frame(&mut r, 1024).is_err());
    }

    #[test]
    fn frame_buffer_reassembles_byte_at_a_time() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &Request::Ping.encode()).unwrap();
        write_frame(
            &mut wire,
            &Request::Get {
                snap: Some(7),
                key: b"k".to_vec(),
            }
            .encode(),
        )
        .unwrap();
        let mut fb = FrameBuffer::new(1024);
        let mut got = Vec::new();
        for b in &wire {
            fb.extend(&[*b]);
            while let Some(p) = fb.pop().unwrap() {
                got.push(Request::decode(&p).unwrap());
            }
        }
        assert_eq!(
            got,
            vec![
                Request::Ping,
                Request::Get {
                    snap: Some(7),
                    key: b"k".to_vec()
                }
            ]
        );
        assert_eq!(fb.buffered(), 0);
    }

    fn bytes_strategy() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(proptest::strategy::any::<u8>(), 0..64)
    }

    fn request_strategy() -> impl Strategy<Value = Request> {
        prop_oneof![
            Just(Request::Ping),
            Just(Request::SnapOpen),
            Just(Request::Flush),
            Just(Request::RunGc),
            Just(Request::Stats),
            Just(Request::Shutdown),
            (bytes_strategy(), proptest::strategy::any::<bool>())
                .prop_map(|(key, sync)| Request::Delete { key, sync }),
            (
                bytes_strategy(),
                bytes_strategy(),
                proptest::strategy::any::<bool>()
            )
                .prop_map(|(key, value, sync)| Request::Put { key, value, sync }),
            (proptest::strategy::any::<bool>(), bytes_strategy()).prop_map(|(pinned, key)| {
                Request::Get {
                    snap: pinned.then_some(42),
                    key,
                }
            }),
            proptest::strategy::any::<u64>().prop_map(|id| Request::SnapClose { id }),
            (
                proptest::collection::vec((bytes_strategy(), bytes_strategy()), 0..8),
                proptest::strategy::any::<bool>()
            )
                .prop_map(|(kvs, sync)| {
                    Request::Write {
                        ops: kvs
                            .into_iter()
                            .enumerate()
                            .map(|(i, (key, value))| {
                                if i % 3 == 0 {
                                    BatchOp::Delete { key }
                                } else {
                                    BatchOp::Put { key, value }
                                }
                            })
                            .collect(),
                        sync,
                    }
                }),
            (
                proptest::strategy::any::<bool>(),
                bytes_strategy(),
                proptest::strategy::any::<bool>(),
                bytes_strategy(),
                proptest::strategy::any::<u32>()
            )
                .prop_map(|(pinned, lo, bounded, hi, limit)| Request::Scan {
                    snap: pinned.then_some(9),
                    lo,
                    hi: bounded.then_some(hi),
                    limit: limit % 10_000,
                }),
            Just(Request::TxnBegin),
            (proptest::strategy::any::<u64>(), bytes_strategy())
                .prop_map(|(txn, key)| Request::TxnGet { txn, key }),
            (
                proptest::strategy::any::<u64>(),
                bytes_strategy(),
                bytes_strategy()
            )
                .prop_map(|(txn, key, value)| Request::TxnPut { txn, key, value }),
            (proptest::strategy::any::<u64>(), bytes_strategy())
                .prop_map(|(txn, key)| Request::TxnDelete { txn, key }),
            (
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<bool>()
            )
                .prop_map(|(txn, sync)| Request::TxnCommit { txn, sync }),
            proptest::strategy::any::<u64>().prop_map(|txn| Request::TxnRollback { txn }),
            (proptest::strategy::any::<u8>(), bytes_strategy()).prop_map(|(tag, token)| {
                Request::SubscribeChanges {
                    from: match tag % 3 {
                        0 => SubscribeSpec::Oldest,
                        1 => SubscribeSpec::Latest,
                        _ => SubscribeSpec::Token(token),
                    },
                }
            }),
            (
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u32>()
            )
                .prop_map(|(stream, max)| Request::PollChanges {
                    stream,
                    max: max % 100_000,
                }),
            proptest::strategy::any::<u64>().prop_map(|stream| Request::CloseStream { stream }),
        ]
    }

    fn response_strategy() -> impl Strategy<Value = Response> {
        prop_oneof![
            Just(Response::Pong),
            Just(Response::Done),
            Just(Response::Value { value: None }),
            bytes_strategy().prop_map(|v| Response::Value { value: Some(v) }),
            proptest::strategy::any::<u64>().prop_map(|id| Response::SnapId { id }),
            proptest::strategy::any::<u64>().prop_map(|id| Response::TxnId { id }),
            (
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<bool>()
            )
                .prop_map(|(seq, group_len, synced)| Response::Written {
                    seq,
                    group_len,
                    synced,
                }),
            (
                proptest::strategy::any::<bool>(),
                proptest::collection::vec((bytes_strategy(), bytes_strategy()), 0..8)
            )
                .prop_map(|(last, entries)| Response::ScanChunk { entries, last }),
            (
                proptest::strategy::any::<u32>(),
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u64>(),
                proptest::strategy::any::<u64>()
            )
                .prop_map(|(jobs, f, r, b)| Response::GcDone {
                    jobs: jobs % 1024,
                    files_collected: f,
                    records_rewritten: r,
                    bytes_reclaimed: b,
                }),
            bytes_strategy().prop_map(|m| Response::Stats {
                text: String::from_utf8_lossy(&m).into_owned(),
            }),
            proptest::strategy::any::<u64>().prop_map(|id| Response::StreamId { id }),
            (
                proptest::strategy::any::<bool>(),
                proptest::strategy::any::<u64>(),
                bytes_strategy(),
                proptest::collection::vec(
                    (
                        proptest::strategy::any::<u32>(),
                        proptest::strategy::any::<u64>(),
                        bytes_strategy(),
                        proptest::option::of(bytes_strategy()),
                        proptest::option::of(proptest::strategy::any::<u64>()),
                    ),
                    0..8
                )
            )
                .prop_map(|(last, lag, resume, raw)| Response::ChangeChunk {
                    events: raw
                        .into_iter()
                        .map(|(shard, seq, key, value, txn)| WireChange {
                            shard: shard % 256,
                            seq,
                            key,
                            value,
                            txn,
                        })
                        .collect(),
                    resume,
                    lag,
                    last,
                }),
            (proptest::strategy::any::<u8>(), bytes_strategy()).prop_map(|(c, m)| Response::Err {
                code: ALL_WIRE_CODES[c as usize % ALL_WIRE_CODES.len()],
                message: String::from_utf8_lossy(&m).into_owned(),
            }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

        /// Every request survives encode → frame → unframe → decode.
        #[test]
        fn request_round_trip(req in request_strategy()) {
            let payload = req.encode();
            let mut wire = Vec::new();
            write_frame(&mut wire, &payload).unwrap();
            let mut r = &wire[..];
            let framed = read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap();
            prop_assert_eq!(Request::decode(&framed).unwrap(), req);
        }

        /// Every response survives encode → frame → unframe → decode.
        #[test]
        fn response_round_trip(resp in response_strategy()) {
            let payload = resp.encode();
            let mut wire = Vec::new();
            write_frame(&mut wire, &payload).unwrap();
            let mut r = &wire[..];
            let framed = read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap().unwrap();
            prop_assert_eq!(Response::decode(&framed).unwrap(), resp);
        }

        /// Arbitrary garbage never panics the decoder: it either decodes
        /// to something (that re-encodes) or fails with a typed error.
        /// (Truncated length prefixes surface as `Corruption` from the
        /// shared coding helpers; structural violations as
        /// `InvalidArgument` — both are protocol-class on the wire.)
        #[test]
        fn garbage_decode_never_panics(payload in proptest::collection::vec(proptest::strategy::any::<u8>(), 0..256)) {
            match Request::decode(&payload) {
                Ok(req) => prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req),
                Err(e) => prop_assert!(matches!(e, Error::InvalidArgument(_) | Error::Corruption(_))),
            }
            match Response::decode(&payload) {
                Ok(resp) => prop_assert_eq!(Response::decode(&resp.encode()).unwrap(), resp),
                Err(e) => prop_assert!(matches!(e, Error::InvalidArgument(_) | Error::Corruption(_))),
            }
        }

        /// Truncating a valid request payload anywhere still yields a
        /// clean typed error or a (shorter) valid request — no panic,
        /// no bogus trailing state.
        #[test]
        fn truncated_request_decode_is_clean(req in request_strategy(), cut in proptest::strategy::any::<u16>()) {
            let payload = req.encode();
            let cut = (cut as usize) % (payload.len() + 1);
            match Request::decode(&payload[..cut]) {
                Ok(short) => prop_assert_eq!(Request::decode(&short.encode()).unwrap(), short),
                Err(e) => prop_assert!(matches!(e, Error::InvalidArgument(_) | Error::Corruption(_))),
            }
        }
    }
}
