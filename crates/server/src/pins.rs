//! Server-side snapshot pin table.
//!
//! Clients cannot hold RAII guards across a network boundary, so the
//! server holds them: `SnapOpen` stores the engine's snapshot in this
//! table and returns a numeric id; pinned `Get`/`Scan` requests name
//! the id; `SnapClose` drops the guard (releasing the engine's GC
//! read-point pin).
//!
//! A disconnected or crashed client must not pin the engine's oldest
//! read point forever — that would stall snapshot-gated GC. Every
//! entry therefore carries a TTL, refreshed on use, and expired
//! entries are swept on the next table access. Using an expired or
//! unknown id yields a typed `PIN_EXPIRED` wire error, never a stale
//! read.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct PinEntry<S> {
    snap: Arc<S>,
    deadline: Instant,
}

/// Table of live server-side snapshots, keyed by wire id.
///
/// Generic over the engine's snapshot type so one table serves both
/// `Db` and `DbShards` behind the `Engine` trait.
pub struct PinTable<S> {
    inner: Mutex<PinTableInner<S>>,
    ttl: Duration,
}

struct PinTableInner<S> {
    entries: HashMap<u64, PinEntry<S>>,
    next_id: u64,
}

impl<S> PinTable<S> {
    /// Create a table whose entries expire `ttl` after their last use.
    pub fn new(ttl: Duration) -> PinTable<S> {
        PinTable {
            inner: Mutex::new(PinTableInner {
                entries: HashMap::new(),
                next_id: 1,
            }),
            ttl,
        }
    }

    /// Store a snapshot; returns its wire id.
    pub fn open(&self, snap: S) -> u64 {
        let mut t = self.inner.lock();
        let now = Instant::now();
        Self::sweep_locked(&mut t, now);
        let id = t.next_id;
        t.next_id += 1;
        t.entries.insert(
            id,
            PinEntry {
                snap: Arc::new(snap),
                deadline: now + self.ttl,
            },
        );
        id
    }

    /// Look up a snapshot by id, refreshing its TTL. Returns `None`
    /// for unknown or expired ids. The returned `Arc` keeps the
    /// snapshot (and its GC pin) alive for the duration of the read
    /// even if the entry is closed or expires mid-request.
    pub fn get(&self, id: u64) -> Option<Arc<S>> {
        let mut t = self.inner.lock();
        let now = Instant::now();
        Self::sweep_locked(&mut t, now);
        let entry = t.entries.get_mut(&id)?;
        entry.deadline = now + self.ttl;
        Some(entry.snap.clone())
    }

    /// Drop a snapshot. Returns `false` if the id was unknown (already
    /// closed or expired).
    pub fn close(&self, id: u64) -> bool {
        let mut t = self.inner.lock();
        Self::sweep_locked(&mut t, Instant::now());
        t.entries.remove(&id).is_some()
    }

    /// Number of live (unexpired) pins.
    pub fn len(&self) -> usize {
        let mut t = self.inner.lock();
        Self::sweep_locked(&mut t, Instant::now());
        t.entries.len()
    }

    /// True when no pins are live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every pin (shutdown path: release all GC read points
    /// before the final flush).
    pub fn clear(&self) {
        self.inner.lock().entries.clear();
    }

    fn sweep_locked(t: &mut PinTableInner<S>, now: Instant) {
        t.entries.retain(|_, e| e.deadline > now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_get_close_lifecycle() {
        let table: PinTable<&'static str> = PinTable::new(Duration::from_secs(60));
        let id = table.open("snap");
        assert_eq!(table.len(), 1);
        assert_eq!(*table.get(id).unwrap(), "snap");
        assert!(table.close(id));
        assert!(!table.close(id), "double close must report unknown id");
        assert!(table.get(id).is_none());
        assert!(table.is_empty());
    }

    #[test]
    fn ids_are_never_reused() {
        let table: PinTable<u32> = PinTable::new(Duration::from_secs(60));
        let a = table.open(1);
        table.close(a);
        let b = table.open(2);
        assert_ne!(a, b);
    }

    #[test]
    fn entries_expire_after_ttl() {
        let table: PinTable<u32> = PinTable::new(Duration::from_millis(20));
        let id = table.open(7);
        assert!(table.get(id).is_some());
        std::thread::sleep(Duration::from_millis(40));
        assert!(table.get(id).is_none(), "entry should have expired");
        assert_eq!(table.len(), 0);
    }

    #[test]
    fn use_refreshes_ttl() {
        let table: PinTable<u32> = PinTable::new(Duration::from_millis(60));
        let id = table.open(7);
        for _ in 0..4 {
            std::thread::sleep(Duration::from_millis(25));
            assert!(table.get(id).is_some(), "active pin must not expire");
        }
    }

    #[test]
    fn get_keeps_snapshot_alive_past_close() {
        let table: PinTable<String> = PinTable::new(Duration::from_secs(60));
        let id = table.open("held".to_string());
        let held = table.get(id).unwrap();
        table.close(id);
        // The Arc we took before close still works.
        assert_eq!(*held, "held");
    }
}
