//! Write batches: the atomic unit of the write path — plus the shared
//! per-call [`WriteOptions`] and the typed [`WriteReceipt`] every commit
//! returns.
//!
//! A batch serializes to one WAL record:
//!
//! ```text
//! fixed64 base_seq | fixed32 count | entry*
//! entry := type_byte | varint klen | key | [varint vlen | value]
//! ```
//!
//! (Tombstones carry no value field.) Sequence numbers are assigned when
//! the batch is committed: entry `i` receives `base_seq + i`. Under group
//! commit several batches are merged (see [`WriteBatch::append`]) into a
//! single record, so a torn tail at recovery drops the whole group as a
//! unit — never a partial group.

use bytes::Bytes;
use scavenger_util::coding::{
    get_fixed32, get_fixed64, get_length_prefixed_slice, put_fixed32, put_fixed64,
    put_length_prefixed_slice,
};
use scavenger_util::ikey::{SeqNo, ValueRef, ValueType};
use scavenger_util::{Error, Result};

/// Per-call write options: the single options type carried from the
/// server wire protocol down to the WAL append.
///
/// Every write entry point — `Lsm::write_opts`, the engine facade's
/// `put_with`/`delete_with`/`write_with`, the `KvWrite` trait, and the
/// server's Put/Delete/Write requests — takes this struct; there are no
/// bare-bool durability knobs anywhere on the write path.
#[derive(Debug, Clone)]
pub struct WriteOptions {
    /// Fsync the WAL before acknowledging the write. With `false` the
    /// record is appended but not synced — group durability is traded
    /// for latency, and a crash may lose the unsynced tail. Under group
    /// commit a single fsync covers every `sync = true` rider in the
    /// group. Default `true`.
    pub sync: bool,
    /// Skip space-aware write throttling (paper §III-D) for this write.
    /// Maintenance writes that must land even while the store is over
    /// its space limit (e.g. tombstones that *reclaim* space) use this.
    /// Ignored below the engine facade (the LSM layer has no throttle).
    /// Default `false`.
    pub disable_throttle: bool,
    /// Transaction id to attach to this batch's change-stream events.
    /// The 2PC coordinator tags each shard's slice of a multi-shard
    /// commit with the transaction's id so change subscribers can
    /// regroup the slices. Purely observational: it never affects what
    /// is written. Default `None`.
    pub txn_id: Option<u64>,
}

impl Default for WriteOptions {
    fn default() -> Self {
        WriteOptions {
            sync: true,
            disable_throttle: false,
            txn_id: None,
        }
    }
}

impl WriteOptions {
    /// Options with an explicit durability choice (other knobs default).
    pub fn with_sync(sync: bool) -> Self {
        WriteOptions {
            sync,
            ..WriteOptions::default()
        }
    }
}

/// Typed acknowledgment of a committed write, replacing the bare
/// `SeqNo` the legacy write path returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteReceipt {
    /// Highest sequence number assigned to this batch (its commit
    /// point; the batch occupies the contiguous range ending here).
    pub seq: SeqNo,
    /// Number of batches in the commit group that carried this write
    /// (1 = no riders; 0 = the batch was empty and nothing committed).
    pub group_len: u64,
    /// True when an fsync covered this write before it was
    /// acknowledged — either requested by this writer or ridden for
    /// free on a `sync = true` group member that committed after it in
    /// the same WAL record.
    pub synced: bool,
}

/// One batched operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchEntry {
    /// Entry kind.
    pub vtype: ValueType,
    /// User key.
    pub key: Vec<u8>,
    /// Value bytes (empty for tombstones; encoded [`ValueRef`] for refs).
    pub value: Bytes,
}

/// An ordered set of writes applied atomically.
#[derive(Debug, Clone, Default)]
pub struct WriteBatch {
    entries: Vec<BatchEntry>,
    byte_size: usize,
}

impl WriteBatch {
    /// Create an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a put of an inline value.
    pub fn put(&mut self, key: impl AsRef<[u8]>, value: impl Into<Bytes>) {
        let key = key.as_ref().to_vec();
        let value = value.into();
        self.byte_size += key.len() + value.len() + 16;
        self.entries.push(BatchEntry {
            vtype: ValueType::Value,
            key,
            value,
        });
    }

    /// Queue a put of a value reference (used by KV-separated engines for
    /// GC write-back and recovery paths).
    pub fn put_ref(&mut self, key: impl AsRef<[u8]>, vref: ValueRef) {
        let key = key.as_ref().to_vec();
        let value = Bytes::from(vref.encode());
        self.byte_size += key.len() + value.len() + 16;
        self.entries.push(BatchEntry {
            vtype: ValueType::ValueRef,
            key,
            value,
        });
    }

    /// Queue a deletion.
    pub fn delete(&mut self, key: impl AsRef<[u8]>) {
        let key = key.as_ref().to_vec();
        self.byte_size += key.len() + 16;
        self.entries.push(BatchEntry {
            vtype: ValueType::Deletion,
            key,
            value: Bytes::new(),
        });
    }

    /// Number of operations.
    pub fn count(&self) -> usize {
        self.entries.len()
    }

    /// True if no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate in-memory footprint (used for memtable accounting).
    pub fn byte_size(&self) -> usize {
        self.byte_size
    }

    /// The queued operations.
    pub fn entries(&self) -> &[BatchEntry] {
        &self.entries
    }

    /// Move every operation of `other` onto the end of this batch,
    /// preserving order. Group commit merges all queued batches through
    /// this before encoding, so the whole group becomes one WAL record.
    pub fn append(&mut self, other: WriteBatch) {
        self.byte_size += other.byte_size;
        self.entries.extend(other.entries);
    }

    /// Serialize with the given base sequence number.
    pub fn encode(&self, base_seq: SeqNo) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_size + 16);
        put_fixed64(&mut out, base_seq);
        put_fixed32(&mut out, self.entries.len() as u32);
        for e in &self.entries {
            out.push(e.vtype as u8);
            put_length_prefixed_slice(&mut out, &e.key);
            if e.vtype != ValueType::Deletion {
                put_length_prefixed_slice(&mut out, &e.value);
            }
        }
        out
    }

    /// Parse a serialized batch, returning `(base_seq, batch)`.
    pub fn decode(mut src: &[u8]) -> Result<(SeqNo, WriteBatch)> {
        let base_seq = get_fixed64(&mut src)?;
        let count = get_fixed32(&mut src)? as usize;
        let mut batch = WriteBatch::new();
        for _ in 0..count {
            if src.is_empty() {
                return Err(Error::corruption("truncated write batch"));
            }
            let vtype = ValueType::from_u8(src[0])?;
            src = &src[1..];
            let key = get_length_prefixed_slice(&mut src)?.to_vec();
            let value = if vtype != ValueType::Deletion {
                Bytes::copy_from_slice(get_length_prefixed_slice(&mut src)?)
            } else {
                Bytes::new()
            };
            batch.byte_size += key.len() + value.len() + 16;
            batch.entries.push(BatchEntry { vtype, key, value });
        }
        if !src.is_empty() {
            return Err(Error::corruption("trailing bytes in write batch"));
        }
        Ok((base_seq, batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_mixed_ops() {
        let mut b = WriteBatch::new();
        b.put(b"alpha", Bytes::from_static(b"one"));
        b.delete(b"beta");
        b.put_ref(
            b"gamma",
            ValueRef {
                file: 42,
                size: 16384,
                offset: 7,
            },
        );
        let enc = b.encode(1000);
        let (seq, d) = WriteBatch::decode(&enc).unwrap();
        assert_eq!(seq, 1000);
        assert_eq!(d.count(), 3);
        assert_eq!(d.entries()[0].vtype, ValueType::Value);
        assert_eq!(d.entries()[0].key, b"alpha");
        assert_eq!(&d.entries()[0].value[..], b"one");
        assert_eq!(d.entries()[1].vtype, ValueType::Deletion);
        assert!(d.entries()[1].value.is_empty());
        assert_eq!(d.entries()[2].vtype, ValueType::ValueRef);
        let r = ValueRef::decode(&d.entries()[2].value).unwrap();
        assert_eq!(r.file, 42);
    }

    #[test]
    fn empty_batch_roundtrip() {
        let b = WriteBatch::new();
        assert!(b.is_empty());
        let (seq, d) = WriteBatch::decode(&b.encode(5)).unwrap();
        assert_eq!(seq, 5);
        assert_eq!(d.count(), 0);
    }

    #[test]
    fn truncated_batch_is_corruption() {
        let mut b = WriteBatch::new();
        b.put(b"key", Bytes::from_static(b"value"));
        let enc = b.encode(1);
        for cut in 1..enc.len() {
            assert!(WriteBatch::decode(&enc[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn trailing_garbage_is_corruption() {
        let mut b = WriteBatch::new();
        b.put(b"key", Bytes::from_static(b"value"));
        let mut enc = b.encode(1);
        enc.push(0xff);
        assert!(WriteBatch::decode(&enc).is_err());
    }

    #[test]
    fn append_merges_batches_in_order() {
        let mut a = WriteBatch::new();
        a.put(b"k1", Bytes::from_static(b"v1"));
        let mut b = WriteBatch::new();
        b.delete(b"k2");
        b.put(b"k3", Bytes::from_static(b"v3"));
        let combined_size = a.byte_size() + b.byte_size();
        a.append(b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.byte_size(), combined_size);
        assert_eq!(a.entries()[0].key, b"k1");
        assert_eq!(a.entries()[1].key, b"k2");
        assert_eq!(a.entries()[1].vtype, ValueType::Deletion);
        assert_eq!(a.entries()[2].key, b"k3");
        // The merged batch round-trips as one record.
        let (seq, d) = WriteBatch::decode(&a.encode(77)).unwrap();
        assert_eq!(seq, 77);
        assert_eq!(d.count(), 3);
    }

    #[test]
    fn write_options_defaults_are_durable() {
        let o = WriteOptions::default();
        assert!(o.sync);
        assert!(!o.disable_throttle);
        assert!(!WriteOptions::with_sync(false).sync);
    }

    #[test]
    fn byte_size_tracks_growth() {
        let mut b = WriteBatch::new();
        let before = b.byte_size();
        b.put(b"key", Bytes::from(vec![0u8; 100]));
        assert!(b.byte_size() >= before + 100);
    }
}
