//! Write-ahead log in the LevelDB 32 KiB-block record format.
//!
//! ```text
//! block   := record* (trailer of zeros if < 7 bytes remain)
//! record  := masked_crc32c(4) | length(2) | type(1) | payload
//! type    := FULL=1 | FIRST=2 | MIDDLE=3 | LAST=4
//! ```
//!
//! Records never span a block boundary unfragmented: large payloads are
//! split into FIRST/MIDDLE*/LAST fragments. The reader verifies CRCs and
//! treats a corrupt or truncated tail as a clean end-of-log (the standard
//! crash-tolerant behaviour), reporting how many bytes it dropped.
//!
//! The same format backs the manifest (version-edit log).

use bytes::Bytes;
use scavenger_env::WritableFile;
use scavenger_util::{crc32c, Result};

/// Log block size.
pub const BLOCK_SIZE: usize = 32 * 1024;
/// Per-record header: crc(4) + len(2) + type(1).
pub const HEADER_SIZE: usize = 7;

const FULL: u8 = 1;
const FIRST: u8 = 2;
const MIDDLE: u8 = 3;
const LAST: u8 = 4;

/// Appends records to a log file.
pub struct LogWriter {
    file: Box<dyn WritableFile>,
    block_offset: usize,
    syncs: u64,
}

impl LogWriter {
    /// Wrap a writable file (assumed empty / fresh).
    pub fn new(file: Box<dyn WritableFile>) -> Self {
        LogWriter {
            file,
            block_offset: 0,
            syncs: 0,
        }
    }

    /// Append one record, fragmenting across blocks as needed.
    pub fn add_record(&mut self, payload: &[u8]) -> Result<()> {
        let mut left = payload;
        let mut begin = true;
        loop {
            let leftover = BLOCK_SIZE - self.block_offset;
            if leftover < HEADER_SIZE {
                // Pad the tail of the block with zeros.
                if leftover > 0 {
                    self.file.append(&[0u8; HEADER_SIZE][..leftover])?;
                }
                self.block_offset = 0;
            }
            let avail = BLOCK_SIZE - self.block_offset - HEADER_SIZE;
            let fragment_len = left.len().min(avail);
            let end = fragment_len == left.len();
            let rtype = match (begin, end) {
                (true, true) => FULL,
                (true, false) => FIRST,
                (false, true) => LAST,
                (false, false) => MIDDLE,
            };
            self.emit(rtype, &left[..fragment_len])?;
            left = &left[fragment_len..];
            begin = false;
            if end {
                return Ok(());
            }
        }
    }

    fn emit(&mut self, rtype: u8, data: &[u8]) -> Result<()> {
        let mut header = [0u8; HEADER_SIZE];
        let crc = crc32c::extend(crc32c::value(&[rtype]), data);
        header[..4].copy_from_slice(&crc32c::mask(crc).to_le_bytes());
        header[4..6].copy_from_slice(&(data.len() as u16).to_le_bytes());
        header[6] = rtype;
        self.file.append(&header)?;
        self.file.append(data)?;
        self.block_offset += HEADER_SIZE + data.len();
        Ok(())
    }

    /// Durably sync the log.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync()?;
        self.syncs += 1;
        Ok(())
    }

    /// Successful syncs issued on this log. Group commit amortizes one
    /// fsync across every `sync = true` rider in a group; tests assert
    /// the amortization through this counter.
    pub fn sync_count(&self) -> u64 {
        self.syncs
    }

    /// Bytes written so far.
    pub fn len(&self) -> u64 {
        self.file.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.file.len() == 0
    }
}

/// Reads records back from log contents.
pub struct LogReader {
    data: Bytes,
    pos: usize,
    /// Bytes at the tail that could not be parsed (torn write at crash).
    pub dropped_bytes: usize,
    /// True if the log ended with a corrupt/truncated record.
    pub hit_corruption: bool,
}

impl LogReader {
    /// Wrap fully-read log contents.
    pub fn new(data: Bytes) -> Self {
        LogReader {
            data,
            pos: 0,
            dropped_bytes: 0,
            hit_corruption: false,
        }
    }

    /// Next record payload, or `None` at end of log. Corrupt tails end the
    /// log cleanly with `hit_corruption = true`.
    pub fn next_record(&mut self) -> Option<Vec<u8>> {
        let mut assembled: Option<Vec<u8>> = None;
        loop {
            match self.next_fragment() {
                Some((rtype, frag)) => match rtype {
                    FULL => {
                        if assembled.is_some() {
                            // FIRST without LAST followed by FULL: drop the
                            // partial record, return the full one.
                            self.hit_corruption = true;
                        }
                        return Some(frag);
                    }
                    FIRST => {
                        assembled = Some(frag);
                    }
                    MIDDLE => match assembled.as_mut() {
                        Some(a) => a.extend_from_slice(&frag),
                        None => {
                            self.hit_corruption = true;
                        }
                    },
                    LAST => match assembled.take() {
                        Some(mut a) => {
                            a.extend_from_slice(&frag);
                            return Some(a);
                        }
                        None => {
                            self.hit_corruption = true;
                        }
                    },
                    _ => {
                        self.hit_corruption = true;
                        return None;
                    }
                },
                None => {
                    if assembled.is_some() {
                        // Torn multi-fragment record at tail.
                        self.hit_corruption = true;
                    }
                    return None;
                }
            }
        }
    }

    fn next_fragment(&mut self) -> Option<(u8, Vec<u8>)> {
        let block_left = BLOCK_SIZE - (self.pos % BLOCK_SIZE);
        if block_left < HEADER_SIZE {
            self.pos += block_left; // skip trailer padding
        }
        if self.pos + HEADER_SIZE > self.data.len() {
            self.dropped_bytes += self.data.len().saturating_sub(self.pos);
            return None;
        }
        let h = &self.data[self.pos..self.pos + HEADER_SIZE];
        let stored_crc = u32::from_le_bytes(h[..4].try_into().unwrap());
        let len = u16::from_le_bytes(h[4..6].try_into().unwrap()) as usize;
        let rtype = h[6];
        if rtype == 0 && len == 0 && stored_crc == 0 {
            // Zero padding (pre-allocated tail); end of log.
            self.dropped_bytes += self.data.len() - self.pos;
            return None;
        }
        let start = self.pos + HEADER_SIZE;
        if start + len > self.data.len() {
            self.dropped_bytes += self.data.len() - self.pos;
            self.hit_corruption = true;
            return None;
        }
        let payload = &self.data[start..start + len];
        let actual = crc32c::extend(crc32c::value(&[rtype]), payload);
        if crc32c::unmask(stored_crc) != actual {
            self.dropped_bytes += self.data.len() - self.pos;
            self.hit_corruption = true;
            return None;
        }
        self.pos = start + len;
        Some((rtype, payload.to_vec()))
    }
}

/// Read every intact record from raw log bytes.
pub fn read_all_records(data: Bytes) -> (Vec<Vec<u8>>, bool) {
    let mut reader = LogReader::new(data);
    let mut out = Vec::new();
    while let Some(r) = reader.next_record() {
        out.push(r);
    }
    (out, reader.hit_corruption)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scavenger_env::{Env, IoClass, MemEnv};

    fn write_log(env: &MemEnv, path: &str, records: &[Vec<u8>]) {
        let f = env.new_writable(path, IoClass::Wal).unwrap();
        let mut w = LogWriter::new(f);
        for r in records {
            w.add_record(r).unwrap();
        }
        w.sync().unwrap();
    }

    fn read_log(env: &MemEnv, path: &str) -> (Vec<Vec<u8>>, bool) {
        read_all_records(env.read_file(path, IoClass::Wal).unwrap())
    }

    #[test]
    fn small_records_roundtrip() {
        let env = MemEnv::new();
        let records: Vec<Vec<u8>> = (0..100)
            .map(|i| format!("record-{i}").into_bytes())
            .collect();
        write_log(&env, "wal", &records);
        let (got, corrupt) = read_log(&env, "wal");
        assert!(!corrupt);
        assert_eq!(got, records);
    }

    #[test]
    fn large_records_fragment_across_blocks() {
        let env = MemEnv::new();
        let records = vec![
            vec![1u8; BLOCK_SIZE * 3 + 123], // FIRST/MIDDLE/MIDDLE/LAST
            vec![2u8; 10],
            vec![3u8; BLOCK_SIZE - HEADER_SIZE], // exactly one block
        ];
        write_log(&env, "wal", &records);
        let (got, corrupt) = read_log(&env, "wal");
        assert!(!corrupt);
        assert_eq!(got.len(), 3);
        assert_eq!(got, records);
    }

    #[test]
    fn empty_record_roundtrip() {
        let env = MemEnv::new();
        write_log(&env, "wal", &[vec![], b"after".to_vec()]);
        let (got, corrupt) = read_log(&env, "wal");
        assert!(!corrupt);
        assert_eq!(got, vec![Vec::<u8>::new(), b"after".to_vec()]);
    }

    #[test]
    fn torn_tail_returns_prefix() {
        let env = MemEnv::new();
        let records: Vec<Vec<u8>> = (0..50).map(|i| vec![i as u8; 200]).collect();
        write_log(&env, "wal", &records);
        let full_len = env.file_size("wal").unwrap();
        // Truncate in the middle of the last record.
        env.truncate_file("wal", full_len - 50).unwrap();
        let (got, corrupt) = read_log(&env, "wal");
        assert!(corrupt);
        assert_eq!(got.len(), 49, "all but the torn record survive");
        assert_eq!(got, records[..49].to_vec());
    }

    #[test]
    fn corrupt_middle_stops_cleanly() {
        let env = MemEnv::new();
        let records: Vec<Vec<u8>> = (0..20).map(|i| vec![i as u8; 100]).collect();
        write_log(&env, "wal", &records);
        // Corrupt record ~10's payload.
        env.corrupt_byte("wal", 10 * 107 + 20).unwrap();
        let (got, corrupt) = read_log(&env, "wal");
        assert!(corrupt);
        assert!(got.len() < 20);
        // Every returned record is intact.
        for (i, r) in got.iter().enumerate() {
            assert_eq!(r, &records[i]);
        }
    }

    #[test]
    fn block_boundary_padding() {
        // A record that leaves < HEADER_SIZE bytes in the block forces
        // padding; the next record must still parse.
        let env = MemEnv::new();
        let first_len = BLOCK_SIZE - HEADER_SIZE - HEADER_SIZE - 3; // leaves 3 bytes
        let records = vec![vec![7u8; first_len], b"next".to_vec()];
        write_log(&env, "wal", &records);
        let (got, corrupt) = read_log(&env, "wal");
        assert!(!corrupt);
        assert_eq!(got, records);
    }

    #[test]
    fn empty_log_reads_empty() {
        let env = MemEnv::new();
        write_log(&env, "wal", &[]);
        let (got, corrupt) = read_log(&env, "wal");
        assert!(!corrupt);
        assert!(got.is_empty());
    }
}
