//! The index LSM-tree engine underneath Scavenger.
//!
//! This crate is a complete leveled LSM-tree: memtables, a write-ahead log,
//! SSTables (via `scavenger-table`), a versioned manifest with crash
//! recovery, snapshots, and score-driven leveled compaction with RocksDB's
//! dynamic level targets.
//!
//! It is *KV-separation aware* in exactly the ways the paper requires:
//!
//! * Entries carry a [`ValueType`](scavenger_util::ikey::ValueType): inline
//!   values, value references ([`ValueRef`](scavenger_util::ikey::ValueRef)),
//!   or tombstones. Key SSTs can be built as BTables or DTables.
//! * Every key SST records its **value dependencies**, so compaction can
//!   score levels by **compensated size** (paper §III-C) — the size the
//!   file would have had in a non-separated tree.
//! * Flush and compaction invoke a [`hooks::ValueHook`]: the
//!   engine above uses it to separate large values into value SSTs at
//!   flush, to relocate blob values during compaction (BlobDB mode), and —
//!   critically — to observe every *dropped* entry. Dropped `ValueRef`s
//!   are how hidden garbage becomes **exposed garbage** (paper §II-D), and
//!   dropped keys feed the DropCache's hotness signal (paper §III-B3).

pub mod batch;
pub mod changelog;
pub mod compaction;
pub mod db;
pub mod filename;
pub mod hooks;
pub mod iter;
pub mod memtable;
pub mod options;
pub mod tcache;
pub mod version;
pub mod view;
pub mod wal;

pub use batch::{WriteBatch, WriteOptions, WriteReceipt};
pub use changelog::{ChangeCursor, ChangeEvent, ChangeLog, ChangeLogStats};
pub use db::{GuardedWrite, Lsm, LsmReadResult};
pub use hooks::{
    DropCause, FileNumAlloc, JobKind, NewValueFile, ValueEditBundle, ValueHook, ValueSession,
};
pub use iter::{BatchSweep, SweepStats};
pub use options::{BackgroundMode, KTableFormat, LsmOptions};
pub use version::{FileMetaData, Version, VersionEdit};
pub use view::{BatchReader, LsmView, ReadPointGuard, ScanIter, Snapshot, SuperVersion};
