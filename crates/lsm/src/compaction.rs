//! Leveled compaction: dynamic level targets, score-based picking, and the
//! shared merge/output job used by both flush and compaction.
//!
//! Two scoring modes exist, selected by `LsmOptions::compensated`:
//!
//! * **vanilla** — levels are scored by raw key-SST bytes, as in RocksDB.
//!   In a KV-separated tree the key SSTs are tiny, so level scores rarely
//!   reach 1.0: compaction is *delayed*, upper-level data accumulates, and
//!   hidden garbage stays hidden (the paper's §II-D diagnosis).
//! * **compensated** (paper §III-C) — every file is charged
//!   `file_size + Σ referenced value bytes`; scores, level targets, and
//!   victim selection all use compensated units, which "converts a
//!   separated LSM-tree into a non-separated one" and restores the vanilla
//!   tree's space-amplification behaviour. Victim selection prefers the
//!   file with the largest compensated size ("push down high-density files
//!   swiftly"), which exposes hidden garbage sooner for the GC.

use crate::filename::table_path;
use crate::hooks::{DropCause, ValueEditBundle, ValueSession};
use crate::iter::InternalIterator;
use crate::options::{KTableFormat, LsmOptions};
use crate::version::{FileMetaData, Version};
use bytes::Bytes;
use scavenger_env::IoClass;
use scavenger_table::btable::{BTableBuilder, BuiltTable, TableOptions};
use scavenger_table::dtable::DTableBuilder;
use scavenger_util::ikey::{make_internal_key, parse_internal_key, SeqNo, ValueType};
use scavenger_util::Result;
use std::sync::Arc;

/// Per-level size targets under dynamic level sizing (RocksDB's
/// `level_compaction_dynamic_level_bytes`, the paper's "DCA").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelTargets {
    /// First level L0 compacts into; levels above it hold no data.
    pub base_level: usize,
    /// Size target per level, in scoring units (raw or compensated bytes).
    pub targets: Vec<u64>,
}

/// Scoring units for `level`.
fn level_units(version: &Version, level: usize, compensated: bool) -> u64 {
    if compensated {
        version.level_compensated(level)
    } else {
        version.level_bytes(level)
    }
}

/// Compute dynamic level targets from the bottommost level's actual size.
pub fn compute_targets(version: &Version, opts: &LsmOptions) -> LevelTargets {
    let num_levels = opts.num_levels;
    let last = num_levels - 1;
    let mult = opts.level_multiplier.max(2);
    let base = opts.base_level_bytes.max(1);
    let mut targets = vec![0u64; num_levels];
    // The last level's "target" is its actual size: it is never a
    // compaction source by score.
    let last_size = level_units(version, last, opts.compensated);
    targets[last] = last_size.max(base);
    let mut base_level = last;
    while base_level > 1 && targets[base_level] / mult >= base {
        targets[base_level - 1] = targets[base_level] / mult;
        base_level -= 1;
    }
    LevelTargets {
        base_level,
        targets,
    }
}

/// A picked compaction.
#[derive(Debug, Clone)]
pub struct Compaction {
    /// Source level.
    pub level: usize,
    /// Destination level.
    pub output_level: usize,
    /// Input files at `level`.
    pub inputs_lo: Vec<Arc<FileMetaData>>,
    /// Overlapping input files at `output_level`.
    pub inputs_hi: Vec<Arc<FileMetaData>>,
    /// True if no data exists below `output_level`.
    pub bottommost: bool,
    /// The score that triggered this pick (for stats/logging).
    pub score: f64,
}

impl Compaction {
    /// Total input bytes (raw).
    pub fn input_bytes(&self) -> u64 {
        self.inputs_lo
            .iter()
            .chain(self.inputs_hi.iter())
            .map(|f| f.file_size)
            .sum()
    }

    /// True if this compaction can be applied as a trivial move (single
    /// input file, nothing overlapping at the destination).
    pub fn is_trivial_move(&self) -> bool {
        self.level > 0 && self.inputs_lo.len() == 1 && self.inputs_hi.is_empty()
    }
}

/// Round-robin cursors so vanilla picking sweeps each level fairly.
#[derive(Debug, Default, Clone)]
pub struct PickerState {
    cursors: Vec<Vec<u8>>,
}

impl PickerState {
    /// Create state for `num_levels` levels.
    pub fn new(num_levels: usize) -> Self {
        PickerState {
            cursors: vec![Vec::new(); num_levels],
        }
    }
}

fn user_range_of(files: &[Arc<FileMetaData>]) -> (Vec<u8>, Vec<u8>) {
    use scavenger_util::ikey::extract_user_key;
    let mut lo: Option<&[u8]> = None;
    let mut hi: Option<&[u8]> = None;
    for f in files {
        let s = extract_user_key(&f.smallest);
        let l = extract_user_key(&f.largest);
        lo = Some(match lo {
            Some(cur) if cur <= s => cur,
            _ => s,
        });
        hi = Some(match hi {
            Some(cur) if cur >= l => cur,
            _ => l,
        });
    }
    (
        lo.unwrap_or_default().to_vec(),
        hi.unwrap_or_default().to_vec(),
    )
}

/// Pick the highest-score compaction, or `None` if all scores are < 1.
pub fn pick_compaction(
    version: &Version,
    opts: &LsmOptions,
    state: &mut PickerState,
) -> Option<Compaction> {
    let targets = compute_targets(version, opts);
    let last = opts.num_levels - 1;

    // Score every candidate source level.
    let mut best: Option<(f64, usize)> = None;
    let l0_score = version.num_files(0) as f64 / opts.l0_trigger as f64;
    if l0_score >= 1.0 {
        best = Some((l0_score, 0));
    }
    for level in 1..last {
        if version.levels[level].is_empty() {
            continue;
        }
        let score = if level < targets.base_level {
            // Orphaned files above the base level (e.g. after a config
            // change): push them down as soon as possible.
            f64::INFINITY
        } else {
            level_units(version, level, opts.compensated) as f64
                / targets.targets[level].max(1) as f64
        };
        if score >= 1.0 && best.map(|(s, _)| score > s).unwrap_or(true) {
            best = Some((score, level));
        }
    }
    let (score, level) = best?;

    if level == 0 {
        let inputs_lo = version.levels[0].clone();
        if inputs_lo.is_empty() {
            return None;
        }
        let output_level = targets.base_level;
        let (lo, hi) = user_range_of(&inputs_lo);
        let inputs_hi = version.overlapping_files(output_level, Some(&lo), Some(&hi));
        let bottommost = (output_level + 1..opts.num_levels).all(|l| version.levels[l].is_empty());
        return Some(Compaction {
            level: 0,
            output_level,
            inputs_lo,
            inputs_hi,
            bottommost,
            score,
        });
    }

    // Pick the victim file within the level.
    let files = &version.levels[level];
    let victim = if opts.compensated {
        // Paper §III-C: push down the file dragging the most value data.
        files
            .iter()
            .max_by_key(|f| f.compensated_size())
            .cloned()
            .unwrap()
    } else {
        // RocksDB-style round-robin sweep by key.
        let cursor = &state.cursors[level];
        files
            .iter()
            .find(|f| f.smallest.as_slice() > cursor.as_slice())
            .or_else(|| files.first())
            .cloned()
            .unwrap()
    };
    state.cursors[level] = victim.smallest.clone();

    let output_level = (level + 1).min(last);
    let (lo, hi) = user_range_of(std::slice::from_ref(&victim));
    let inputs_hi = version.overlapping_files(output_level, Some(&lo), Some(&hi));
    let bottommost = (output_level + 1..opts.num_levels).all(|l| version.levels[l].is_empty());
    Some(Compaction {
        level,
        output_level,
        inputs_lo: vec![victim],
        inputs_hi,
        bottommost,
        score,
    })
}

// One live builder per output job; the size gap between formats is fine.
#[allow(clippy::large_enum_variant)]
enum AnyBuilder {
    B(BTableBuilder),
    D(DTableBuilder),
}

impl AnyBuilder {
    fn add(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        match self {
            AnyBuilder::B(b) => b.add(key, value),
            AnyBuilder::D(b) => b.add(key, value),
        }
    }

    fn estimated_size(&self) -> u64 {
        match self {
            AnyBuilder::B(b) => b.estimated_size(),
            AnyBuilder::D(b) => b.estimated_size(),
        }
    }

    fn num_entries(&self) -> u64 {
        match self {
            AnyBuilder::B(b) => b.num_entries(),
            AnyBuilder::D(b) => b.num_entries(),
        }
    }

    fn finish(self) -> Result<BuiltTable> {
        match self {
            AnyBuilder::B(b) => b.finish(),
            AnyBuilder::D(b) => b.finish(),
        }
    }
}

/// Writes merge output, rolling files at the target size (only at user-key
/// group boundaries, preserving the per-level disjointness invariant).
pub struct OutputWriter<'a> {
    opts: &'a LsmOptions,
    table_opts: TableOptions,
    io_class: IoClass,
    alloc: &'a dyn Fn() -> u64,
    builder: Option<(u64, AnyBuilder)>,
    files: Vec<FileMetaData>,
}

impl<'a> OutputWriter<'a> {
    /// Create an output writer allocating file numbers via `alloc`.
    pub fn new(opts: &'a LsmOptions, io_class: IoClass, alloc: &'a dyn Fn() -> u64) -> Self {
        OutputWriter {
            opts,
            table_opts: opts.table_options(),
            io_class,
            alloc,
            builder: None,
            files: Vec::new(),
        }
    }

    fn ensure_builder(&mut self) -> Result<&mut AnyBuilder> {
        if self.builder.is_none() {
            let number = (self.alloc)();
            let file = self
                .opts
                .env
                .new_writable(&table_path(&self.opts.dir, number), self.io_class)?;
            let b = match self.opts.ktable_format {
                KTableFormat::BTable => {
                    AnyBuilder::B(BTableBuilder::new(file, self.table_opts.clone()))
                }
                KTableFormat::DTable => {
                    AnyBuilder::D(DTableBuilder::new(file, self.table_opts.clone()))
                }
            };
            self.builder = Some((number, b));
        }
        Ok(&mut self.builder.as_mut().unwrap().1)
    }

    /// Append an entry to the current output file.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        self.ensure_builder()?.add(key, value)
    }

    /// Called at user-key group boundaries: roll the output file if it
    /// reached the target size.
    pub fn maybe_roll(&mut self) -> Result<()> {
        let should = self
            .builder
            .as_ref()
            .map(|(_, b)| b.estimated_size() >= self.opts.target_file_size)
            .unwrap_or(false);
        if should {
            self.finish_current()?;
        }
        Ok(())
    }

    fn finish_current(&mut self) -> Result<()> {
        if let Some((number, b)) = self.builder.take() {
            if b.num_entries() == 0 {
                // Nothing written: remove the empty file.
                let _ = self
                    .opts
                    .env
                    .remove_file(&table_path(&self.opts.dir, number));
                return Ok(());
            }
            let built = b.finish()?;
            self.files.push(FileMetaData {
                file_number: number,
                file_size: built.file_size,
                smallest: built.smallest,
                largest: built.largest,
                num_entries: built.props.num_entries,
                ref_bytes: built.props.total_ref_bytes(),
                deps: built.props.deps,
            });
        }
        Ok(())
    }

    /// Finish all output files and return their metadata.
    pub fn finish(mut self) -> Result<Vec<FileMetaData>> {
        self.finish_current()?;
        Ok(self.files)
    }
}

/// Statistics from one merge/output job.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobStats {
    /// Entries read from inputs.
    pub entries_in: u64,
    /// Entries written to outputs.
    pub entries_out: u64,
    /// Entries dropped (shadowed / tombstoned / obsolete tombstones).
    pub entries_dropped: u64,
}

/// Output of [`run_output_job`].
pub struct JobOutput {
    /// Key SSTs created.
    pub files: Vec<FileMetaData>,
    /// Value-store changes from the session.
    pub bundle: ValueEditBundle,
    /// Merge statistics.
    pub stats: JobStats,
}

/// Merge `input` (an internal iterator in internal-key order), apply
/// snapshot-aware deduplication and tombstone elision, route entries
/// through the value session, and write rolled output tables.
///
/// `snapshots` must be sorted ascending. `may_exist_below(ukey)` reports
/// whether any level below the output could hold the key (tombstones are
/// only elided when it returns false and `bottommost` is true).
#[allow(clippy::too_many_arguments)]
pub fn run_output_job(
    opts: &LsmOptions,
    input: &mut dyn InternalIterator,
    snapshots: &[SeqNo],
    bottommost: bool,
    may_exist_below: &dyn Fn(&[u8]) -> bool,
    mut session: Box<dyn ValueSession>,
    alloc: &dyn Fn() -> u64,
    io_class: IoClass,
) -> Result<JobOutput> {
    let mut writer = OutputWriter::new(opts, io_class, alloc);
    let mut stats = JobStats::default();

    // Buffered versions of the current user key (newest first).
    let mut group: Vec<(SeqNo, ValueType, Bytes)> = Vec::new();
    let mut group_key: Vec<u8> = Vec::new();

    let flush_group = |ukey: &[u8],
                       group: &mut Vec<(SeqNo, ValueType, Bytes)>,
                       writer: &mut OutputWriter,
                       session: &mut Box<dyn ValueSession>,
                       stats: &mut JobStats|
     -> Result<()> {
        if group.is_empty() {
            return Ok(());
        }
        // Keep the newest version in each snapshot stripe.
        let mut kept: Vec<(SeqNo, ValueType, Bytes)> = Vec::new();
        let mut last_stripe = usize::MAX;
        for (seq, vtype, value) in group.drain(..) {
            // stripe id = number of snapshots with s < seq; versions in the
            // same stripe are indistinguishable to every reader.
            let stripe = snapshots.partition_point(|s| *s < seq);
            if stripe != last_stripe || kept.is_empty() {
                last_stripe = stripe;
                kept.push((seq, vtype, value));
            } else {
                let cause = match kept.last().map(|(_, t, _)| *t) {
                    Some(ValueType::Deletion) => DropCause::Tombstoned,
                    _ => DropCause::Shadowed,
                };
                stats.entries_dropped += 1;
                session.drop_entry(ukey, seq, vtype, &value, cause);
            }
        }
        // Obsolete-tombstone elision: the oldest kept entry, if it is a
        // tombstone at the bottom with nothing beneath, can vanish.
        if bottommost {
            if let Some((seq, ValueType::Deletion, _)) = kept.last().cloned() {
                if !may_exist_below(ukey) {
                    kept.pop();
                    stats.entries_dropped += 1;
                    session.drop_entry(
                        ukey,
                        seq,
                        ValueType::Deletion,
                        b"",
                        DropCause::ObsoleteTombstone,
                    );
                }
            }
        }
        for (seq, vtype, value) in kept {
            let (out_type, out_value) = session.entry(ukey, seq, vtype, value)?;
            let ikey = make_internal_key(ukey, seq, out_type);
            writer.add(&ikey, &out_value)?;
            stats.entries_out += 1;
        }
        writer.maybe_roll()?;
        Ok(())
    };

    input.seek_to_first();
    while input.valid() {
        let parsed = parse_internal_key(input.key())?;
        stats.entries_in += 1;
        if parsed.user_key != group_key.as_slice() {
            flush_group(
                &group_key,
                &mut group,
                &mut writer,
                &mut session,
                &mut stats,
            )?;
            group_key.clear();
            group_key.extend_from_slice(parsed.user_key);
        }
        group.push((parsed.seq, parsed.vtype, input.value()));
        input.next();
    }
    input.status()?;
    flush_group(
        &group_key,
        &mut group,
        &mut writer,
        &mut session,
        &mut stats,
    )?;

    let files = writer.finish()?;
    let bundle = session.finish()?;
    Ok(JobOutput {
        files,
        bundle,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::PassthroughSession;
    use crate::iter::VecIter;
    use crate::version::VersionEdit;
    use scavenger_env::MemEnv;
    use scavenger_util::ikey::MAX_SEQNO;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn opts() -> LsmOptions {
        let mut o = LsmOptions::new(MemEnv::shared(), "db");
        o.target_file_size = 4096;
        o
    }

    fn e(k: &str, seq: SeqNo, t: ValueType, v: &str) -> (Vec<u8>, Bytes) {
        (
            make_internal_key(k.as_bytes(), seq, t),
            Bytes::copy_from_slice(v.as_bytes()),
        )
    }

    fn run(
        o: &LsmOptions,
        entries: Vec<(Vec<u8>, Bytes)>,
        snapshots: &[SeqNo],
        bottommost: bool,
    ) -> JobOutput {
        let counter = AtomicU64::new(1);
        let alloc = || counter.fetch_add(1, Ordering::SeqCst);
        let mut input = VecIter::new(entries);
        run_output_job(
            o,
            &mut input,
            snapshots,
            bottommost,
            &|_| false,
            Box::new(PassthroughSession),
            &alloc,
            IoClass::Compaction,
        )
        .unwrap()
    }

    fn read_all(o: &LsmOptions, file: &FileMetaData) -> Vec<(Vec<u8>, Vec<u8>)> {
        let t = crate::tcache::open_ktable(
            &o.env,
            &o.dir,
            file.file_number,
            0,
            None,
            IoClass::FgIndexRead,
        )
        .unwrap();
        let mut it = t.iter();
        it.seek_to_first();
        let mut out = Vec::new();
        while it.valid() {
            out.push((it.key().to_vec(), it.value().to_vec()));
            it.next();
        }
        out
    }

    #[test]
    fn dedup_keeps_only_newest_without_snapshots() {
        let o = opts();
        let out = run(
            &o,
            vec![
                e("a", 9, ValueType::Value, "a9"),
                e("a", 5, ValueType::Value, "a5"),
                e("a", 1, ValueType::Value, "a1"),
                e("b", 3, ValueType::Value, "b3"),
            ],
            &[],
            false,
        );
        assert_eq!(out.stats.entries_in, 4);
        assert_eq!(out.stats.entries_out, 2);
        assert_eq!(out.stats.entries_dropped, 2);
        let entries = read_all(&o, &out.files[0]);
        assert_eq!(entries.len(), 2);
        let p = parse_internal_key(&entries[0].0).unwrap();
        assert_eq!((p.user_key, p.seq), (b"a".as_slice(), 9));
    }

    #[test]
    fn snapshots_preserve_intermediate_versions() {
        let o = opts();
        // Snapshot at seq 4 must keep a@3 alive alongside a@9.
        let out = run(
            &o,
            vec![
                e("a", 9, ValueType::Value, "a9"),
                e("a", 6, ValueType::Value, "a6"),
                e("a", 3, ValueType::Value, "a3"),
            ],
            &[4],
            false,
        );
        assert_eq!(out.stats.entries_out, 2);
        let entries = read_all(&o, &out.files[0]);
        let seqs: Vec<u64> = entries
            .iter()
            .map(|(k, _)| parse_internal_key(k).unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![9, 3]);
    }

    #[test]
    fn tombstone_kept_when_not_bottommost() {
        let o = opts();
        let out = run(
            &o,
            vec![
                e("a", 9, ValueType::Deletion, ""),
                e("a", 5, ValueType::Value, "a5"),
            ],
            &[],
            false,
        );
        assert_eq!(out.stats.entries_out, 1);
        let entries = read_all(&o, &out.files[0]);
        let p = parse_internal_key(&entries[0].0).unwrap();
        assert_eq!(p.vtype, ValueType::Deletion);
    }

    #[test]
    fn tombstone_elided_at_bottom() {
        let o = opts();
        let out = run(
            &o,
            vec![
                e("a", 9, ValueType::Deletion, ""),
                e("a", 5, ValueType::Value, "a5"),
                e("b", 2, ValueType::Value, "b2"),
            ],
            &[],
            true,
        );
        // Tombstone and shadowed value both vanish; only b survives.
        assert_eq!(out.stats.entries_out, 1);
        let entries = read_all(&o, &out.files[0]);
        let p = parse_internal_key(&entries[0].0).unwrap();
        assert_eq!(p.user_key, b"b");
    }

    #[test]
    fn outputs_roll_at_target_size_with_disjoint_ranges() {
        let mut o = opts();
        o.target_file_size = 2048;
        let entries: Vec<(Vec<u8>, Bytes)> = (0..200)
            .map(|i| e(&format!("key{i:04}"), 1, ValueType::Value, &"x".repeat(100)))
            .collect();
        let out = run(&o, entries, &[], false);
        assert!(out.files.len() > 1, "expected multiple output files");
        // Ranges must be disjoint and ordered.
        for w in out.files.windows(2) {
            use scavenger_util::ikey::extract_user_key;
            assert!(extract_user_key(&w[0].largest) < extract_user_key(&w[1].smallest));
        }
        let total: u64 = out.files.iter().map(|f| f.num_entries).sum();
        assert_eq!(total, 200);
    }

    #[test]
    fn session_drop_callbacks_fire() {
        struct Recorder {
            #[allow(clippy::type_complexity)]
            drops: std::sync::Arc<parking_lot::Mutex<Vec<(Vec<u8>, DropCause)>>>,
        }
        impl ValueSession for Recorder {
            fn entry(
                &mut self,
                _u: &[u8],
                _s: SeqNo,
                t: ValueType,
                v: Bytes,
            ) -> Result<(ValueType, Bytes)> {
                Ok((t, v))
            }
            fn drop_entry(
                &mut self,
                u: &[u8],
                _s: SeqNo,
                _t: ValueType,
                _v: &[u8],
                cause: DropCause,
            ) {
                self.drops.lock().push((u.to_vec(), cause));
            }
            fn finish(self: Box<Self>) -> Result<ValueEditBundle> {
                Ok(ValueEditBundle::default())
            }
        }
        let drops = std::sync::Arc::new(parking_lot::Mutex::new(Vec::new()));
        let o = opts();
        let counter = AtomicU64::new(1);
        let alloc = || counter.fetch_add(1, Ordering::SeqCst);
        let mut input = VecIter::new(vec![
            e("a", 9, ValueType::Value, "new"),
            e("a", 5, ValueType::Value, "old"),
            e("b", 8, ValueType::Deletion, ""),
            e("b", 2, ValueType::Value, "dead"),
        ]);
        run_output_job(
            &o,
            &mut input,
            &[],
            true,
            &|_| false,
            Box::new(Recorder {
                drops: drops.clone(),
            }),
            &alloc,
            IoClass::Compaction,
        )
        .unwrap();
        let d = drops.lock();
        // a@5 shadowed, b@2 tombstoned, b@8 obsolete tombstone.
        assert_eq!(d.len(), 3);
        assert!(d.contains(&(b"a".to_vec(), DropCause::Shadowed)));
        assert!(d.contains(&(b"b".to_vec(), DropCause::Tombstoned)));
        assert!(d.contains(&(b"b".to_vec(), DropCause::ObsoleteTombstone)));
    }

    // ---- target & picker tests ----

    fn meta_sized(number: u64, lo: &[u8], hi: &[u8], size: u64, refs: u64) -> FileMetaData {
        FileMetaData {
            file_number: number,
            file_size: size,
            smallest: make_internal_key(lo, MAX_SEQNO, ValueType::Value),
            largest: make_internal_key(hi, 0, ValueType::Value),
            num_entries: 1,
            ref_bytes: refs,
            deps: vec![],
        }
    }

    fn version_with(files: Vec<(usize, FileMetaData)>, levels: usize) -> Version {
        let edit = VersionEdit {
            added: files,
            ..VersionEdit::default()
        };
        Version::empty(levels).apply(&edit).unwrap()
    }

    #[test]
    fn targets_small_db_uses_last_level() {
        let o = opts();
        let v = version_with(vec![(6, meta_sized(1, b"a", b"z", 1 << 20, 0))], 7);
        let t = compute_targets(&v, &o);
        assert_eq!(t.base_level, 6, "small DB: everything at the last level");
    }

    #[test]
    fn targets_grow_base_level_upward() {
        let mut o = opts();
        o.base_level_bytes = 1 << 20; // 1 MiB
                                      // Last level 200 MiB -> L5 target 20 MiB -> L4 target 2 MiB -> L3
                                      // would be 0.2 MiB < base, so base_level = 4.
        let v = version_with(vec![(6, meta_sized(1, b"a", b"z", 200 << 20, 0))], 7);
        let t = compute_targets(&v, &o);
        assert_eq!(t.base_level, 4);
        assert_eq!(t.targets[5], 20 << 20);
        assert_eq!(t.targets[4], 2 << 20);
    }

    #[test]
    fn compensated_units_deepen_the_tree() {
        // Tiny key SSTs (1 KiB) dragging 100 MiB of values each: vanilla
        // scoring sees a 3 KiB tree; compensated sees ~300 MiB.
        let files = vec![
            (6, meta_sized(1, b"a", b"f", 1 << 10, 100 << 20)),
            (6, meta_sized(2, b"g", b"m", 1 << 10, 100 << 20)),
            (6, meta_sized(3, b"n", b"z", 1 << 10, 100 << 20)),
        ];
        let v = version_with(files, 7);
        let mut o = opts();
        o.base_level_bytes = 1 << 20;
        o.compensated = false;
        assert_eq!(compute_targets(&v, &o).base_level, 6);
        o.compensated = true;
        let t = compute_targets(&v, &o);
        assert!(t.base_level < 6, "compensation must build more levels");
    }

    #[test]
    fn picker_fires_on_l0_trigger() {
        let mut files = Vec::new();
        for i in 0..4 {
            files.push((0usize, meta_sized(10 + i, b"a", b"z", 1 << 10, 0)));
        }
        let v = version_with(files, 7);
        let o = opts();
        let mut st = PickerState::new(7);
        let c = pick_compaction(&v, &o, &mut st).expect("L0 trigger");
        assert_eq!(c.level, 0);
        assert_eq!(c.inputs_lo.len(), 4);
        assert_eq!(c.output_level, 6, "small tree compacts into last level");
        assert!(c.bottommost);
    }

    #[test]
    fn picker_quiet_below_trigger() {
        let v = version_with(vec![(0, meta_sized(1, b"a", b"z", 1 << 10, 0))], 7);
        let o = opts();
        let mut st = PickerState::new(7);
        assert!(pick_compaction(&v, &o, &mut st).is_none());
    }

    #[test]
    fn compensated_picker_selects_densest_file() {
        // L5 over target; files with different compensated weights.
        let mut o = opts();
        o.base_level_bytes = 1 << 20;
        o.compensated = true;
        let files = vec![
            (5, meta_sized(1, b"a", b"c", 1 << 10, 5 << 20)),
            (5, meta_sized(2, b"d", b"f", 1 << 10, 500 << 20)), // densest
            (5, meta_sized(3, b"g", b"i", 1 << 10, 1 << 20)),
            (6, meta_sized(4, b"a", b"z", 1 << 20, 100 << 20)),
        ];
        let v = version_with(files, 7);
        let mut st = PickerState::new(7);
        let c = pick_compaction(&v, &o, &mut st).expect("over target");
        assert_eq!(c.level, 5);
        assert_eq!(c.inputs_lo[0].file_number, 2, "densest file first");
        assert_eq!(c.inputs_hi.len(), 1);
        assert!(c.bottommost);
    }

    #[test]
    fn trivial_move_detected() {
        let c = Compaction {
            level: 2,
            output_level: 3,
            inputs_lo: vec![Arc::new(meta_sized(1, b"a", b"b", 10, 0))],
            inputs_hi: vec![],
            bottommost: false,
            score: 1.5,
        };
        assert!(c.is_trivial_move());
    }
}
