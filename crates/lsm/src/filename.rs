//! File naming conventions for everything the engine persists.
//!
//! All files live under one directory prefix:
//!
//! | pattern | contents |
//! |---|---|
//! | `NNNNNN.sst`  | key SST (index LSM-tree) |
//! | `NNNNNN.vsst` | value SST (BTable/RTable value store) |
//! | `NNNNNN.blob` | blob log (BlobDB/Titan-style value file) |
//! | `NNNNNN.log`  | write-ahead log |
//! | `MANIFEST-NNNNNN` | version-edit log |
//! | `CURRENT` | name of the live manifest |

/// Kinds of files the engine writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Key SST.
    Table,
    /// Value SST.
    ValueTable,
    /// Blob log.
    BlobLog,
    /// Write-ahead log.
    Wal,
    /// Manifest.
    Manifest,
    /// CURRENT pointer.
    Current,
}

/// Path of a key SST.
pub fn table_path(dir: &str, number: u64) -> String {
    format!("{dir}/{number:06}.sst")
}

/// Path of a value SST.
pub fn value_table_path(dir: &str, number: u64) -> String {
    format!("{dir}/{number:06}.vsst")
}

/// Path of a blob log.
pub fn blob_path(dir: &str, number: u64) -> String {
    format!("{dir}/{number:06}.blob")
}

/// Path of a WAL file.
pub fn wal_path(dir: &str, number: u64) -> String {
    format!("{dir}/{number:06}.log")
}

/// Path of a manifest.
pub fn manifest_path(dir: &str, number: u64) -> String {
    format!("{dir}/MANIFEST-{number:06}")
}

/// Path of the CURRENT pointer file.
pub fn current_path(dir: &str) -> String {
    format!("{dir}/CURRENT")
}

/// Parse a path (as produced by the helpers above) into its kind and
/// number. Returns `None` for unrecognized names.
pub fn parse_path(dir: &str, path: &str) -> Option<(FileKind, u64)> {
    let rest = path.strip_prefix(dir)?.strip_prefix('/')?;
    if rest == "CURRENT" {
        return Some((FileKind::Current, 0));
    }
    if let Some(num) = rest.strip_prefix("MANIFEST-") {
        return num.parse().ok().map(|n| (FileKind::Manifest, n));
    }
    let (stem, ext) = rest.rsplit_once('.')?;
    let number: u64 = stem.parse().ok()?;
    let kind = match ext {
        "sst" => FileKind::Table,
        "vsst" => FileKind::ValueTable,
        "blob" => FileKind::BlobLog,
        "log" => FileKind::Wal,
        _ => return None,
    };
    Some((kind, number))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_kinds() {
        let dir = "db";
        assert_eq!(
            parse_path(dir, &table_path(dir, 7)),
            Some((FileKind::Table, 7))
        );
        assert_eq!(
            parse_path(dir, &value_table_path(dir, 8)),
            Some((FileKind::ValueTable, 8))
        );
        assert_eq!(
            parse_path(dir, &blob_path(dir, 9)),
            Some((FileKind::BlobLog, 9))
        );
        assert_eq!(
            parse_path(dir, &wal_path(dir, 10)),
            Some((FileKind::Wal, 10))
        );
        assert_eq!(
            parse_path(dir, &manifest_path(dir, 11)),
            Some((FileKind::Manifest, 11))
        );
        assert_eq!(
            parse_path(dir, &current_path(dir)),
            Some((FileKind::Current, 0))
        );
    }

    #[test]
    fn rejects_foreign_paths() {
        assert_eq!(parse_path("db", "other/000001.sst"), None);
        assert_eq!(parse_path("db", "db/garbage.txt"), None);
        assert_eq!(parse_path("db", "db/xyz.sst"), None);
    }

    #[test]
    fn numbers_are_zero_padded_for_lexicographic_order() {
        assert!(table_path("d", 2) < table_path("d", 10));
        assert!(wal_path("d", 99) < wal_path("d", 100));
    }
}
