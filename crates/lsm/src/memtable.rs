//! In-memory write buffer ordered by internal key.
//!
//! A `BTreeMap` under an `RwLock` keyed by encoded internal keys (with the
//! internal-key ordering). Writes are already serialized by the engine's
//! write mutex, so the lock is effectively uncontended on the write side;
//! reads take the shared lock. Frozen (immutable) memtables are only ever
//! read.

use bytes::Bytes;
use parking_lot::RwLock;
use scavenger_util::ikey::{
    cmp_internal, make_internal_key, parse_internal_key, SeqNo, ValueType, MAX_SEQNO,
};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};

/// Encoded internal key with internal-key ordering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemKey(pub Vec<u8>);

impl Ord for MemKey {
    fn cmp(&self, other: &Self) -> Ordering {
        cmp_internal(&self.0, &other.0)
    }
}

impl PartialOrd for MemKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Outcome of a memtable point lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemGet {
    /// No version of the key is visible at the read sequence.
    NotFound,
    /// The visible version is a tombstone.
    Deleted(SeqNo),
    /// A visible value (inline or encoded reference).
    Found {
        /// Sequence of the found version.
        seq: SeqNo,
        /// Entry kind (`Value` or `ValueRef`).
        vtype: ValueType,
        /// Value payload.
        value: Bytes,
    },
}

/// The in-memory write buffer.
pub struct Memtable {
    map: RwLock<BTreeMap<MemKey, Bytes>>,
    approx_size: AtomicUsize,
}

impl Default for Memtable {
    fn default() -> Self {
        Self::new()
    }
}

impl Memtable {
    /// Create an empty memtable.
    pub fn new() -> Self {
        Memtable {
            map: RwLock::new(BTreeMap::new()),
            approx_size: AtomicUsize::new(0),
        }
    }

    /// Insert an entry.
    pub fn insert(&self, user_key: &[u8], seq: SeqNo, vtype: ValueType, value: Bytes) {
        let ikey = make_internal_key(user_key, seq, vtype);
        let charge = ikey.len() + value.len() + 32;
        self.map.write().insert(MemKey(ikey), value);
        self.approx_size.fetch_add(charge, AtomicOrdering::Relaxed);
    }

    /// Look up the newest version of `user_key` visible at `read_seq`.
    pub fn get(&self, user_key: &[u8], read_seq: SeqNo) -> MemGet {
        let target = MemKey(make_internal_key(user_key, read_seq, ValueType::ValueRef));
        let map = self.map.read();
        if let Some((k, v)) = map
            .range((Bound::Included(target), Bound::Unbounded))
            .next()
        {
            let parsed = parse_internal_key(&k.0).expect("memtable key valid");
            if parsed.user_key == user_key {
                return match parsed.vtype {
                    ValueType::Deletion => MemGet::Deleted(parsed.seq),
                    t => MemGet::Found {
                        seq: parsed.seq,
                        vtype: t,
                        value: v.clone(),
                    },
                };
            }
        }
        MemGet::NotFound
    }

    /// Approximate memory footprint in bytes.
    pub fn approx_size(&self) -> usize {
        self.approx_size.load(AtomicOrdering::Relaxed)
    }

    /// Number of entries (versions, not distinct user keys).
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True if the memtable holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }

    /// Point-in-time sorted snapshot of all entries (internal key, value).
    /// Values are `Bytes` so the copies are cheap reference bumps.
    pub fn snapshot(&self) -> Vec<(Vec<u8>, Bytes)> {
        self.map
            .read()
            .iter()
            .map(|(k, v)| (k.0.clone(), v.clone()))
            .collect()
    }

    /// Sorted snapshot of entries whose *user key* lies in
    /// `[lo, hi)` (`hi = None` means unbounded).
    pub fn snapshot_range(&self, lo: &[u8], hi: Option<&[u8]>) -> Vec<(Vec<u8>, Bytes)> {
        let start = MemKey(make_internal_key(lo, MAX_SEQNO, ValueType::ValueRef));
        self.map
            .read()
            .range((Bound::Included(start), Bound::Unbounded))
            .take_while(|(k, _)| match hi {
                Some(h) => {
                    let p = parse_internal_key(&k.0).expect("valid");
                    p.user_key < h
                }
                None => true,
            })
            .map(|(k, v)| (k.0.clone(), v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_get_latest() {
        let m = Memtable::new();
        m.insert(b"k", 1, ValueType::Value, Bytes::from_static(b"v1"));
        m.insert(b"k", 5, ValueType::Value, Bytes::from_static(b"v5"));
        match m.get(b"k", MAX_SEQNO) {
            MemGet::Found { seq, value, .. } => {
                assert_eq!(seq, 5);
                assert_eq!(&value[..], b"v5");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn snapshot_sequence_respected() {
        let m = Memtable::new();
        m.insert(b"k", 10, ValueType::Value, Bytes::from_static(b"new"));
        m.insert(b"k", 3, ValueType::Value, Bytes::from_static(b"old"));
        match m.get(b"k", 5) {
            MemGet::Found { seq, value, .. } => {
                assert_eq!(seq, 3);
                assert_eq!(&value[..], b"old");
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(m.get(b"k", 2), MemGet::NotFound);
    }

    #[test]
    fn tombstone_reported_as_deleted() {
        let m = Memtable::new();
        m.insert(b"k", 1, ValueType::Value, Bytes::from_static(b"v"));
        m.insert(b"k", 2, ValueType::Deletion, Bytes::new());
        assert_eq!(m.get(b"k", MAX_SEQNO), MemGet::Deleted(2));
        // Older snapshot still sees the value.
        assert!(matches!(m.get(b"k", 1), MemGet::Found { .. }));
    }

    #[test]
    fn get_does_not_bleed_to_neighbors() {
        let m = Memtable::new();
        m.insert(b"a", 1, ValueType::Value, Bytes::from_static(b"va"));
        m.insert(b"c", 1, ValueType::Value, Bytes::from_static(b"vc"));
        assert_eq!(m.get(b"b", MAX_SEQNO), MemGet::NotFound);
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let m = Memtable::new();
        m.insert(b"b", 2, ValueType::Value, Bytes::from_static(b"b2"));
        m.insert(b"a", 1, ValueType::Value, Bytes::from_static(b"a1"));
        m.insert(b"b", 7, ValueType::Deletion, Bytes::new());
        let snap = m.snapshot();
        assert_eq!(snap.len(), 3);
        // Order: a@1, b@7(del), b@2 (seq descending within user key).
        let parsed: Vec<_> = snap
            .iter()
            .map(|(k, _)| parse_internal_key(k).unwrap())
            .collect();
        assert_eq!(parsed[0].user_key, b"a");
        assert_eq!(parsed[1].user_key, b"b");
        assert_eq!(parsed[1].seq, 7);
        assert_eq!(parsed[2].seq, 2);
    }

    #[test]
    fn snapshot_range_bounds_by_user_key() {
        let m = Memtable::new();
        for (k, s) in [(b"a", 1u64), (b"b", 2), (b"c", 3), (b"d", 4)] {
            m.insert(k, s, ValueType::Value, Bytes::from_static(b"x"));
        }
        let snap = m.snapshot_range(b"b", Some(b"d"));
        let keys: Vec<_> = snap
            .iter()
            .map(|(k, _)| parse_internal_key(k).unwrap().user_key.to_vec())
            .collect();
        assert_eq!(keys, vec![b"b".to_vec(), b"c".to_vec()]);
        let snap = m.snapshot_range(b"c", None);
        assert_eq!(snap.len(), 2);
    }

    #[test]
    fn size_accounting_grows() {
        let m = Memtable::new();
        assert_eq!(m.approx_size(), 0);
        m.insert(b"key", 1, ValueType::Value, Bytes::from(vec![0u8; 1000]));
        assert!(m.approx_size() >= 1000);
        assert_eq!(m.len(), 1);
        assert!(!m.is_empty());
    }
}
