//! Pinned read views (RocksDB-style *superversions*).
//!
//! Every structural mutation of the tree — memtable rotation, flush,
//! compaction apply, value-store edit — installs a fresh immutable
//! [`SuperVersion`]: one `Arc` bundle of {active memtable, immutable
//! memtables, SST [`Version`]}. A reader pins the bundle with **one**
//! `Arc` clone and walks it without ever touching the live structures, so
//! no interleaving of rotation/flush/compaction can tear a read.
//!
//! Pinning the structures is only half of consistency: a view also
//! *registers* its visible sequence in the engine's read-point
//! registry. Flush, compaction, and the value GC all treat
//! registered sequences as **read points** whose visible versions must
//! survive, which is what makes a [`LsmView`] read *strict*: the exact
//! `(key → version)` mapping at the view's sequence stays resolvable for
//! the view's whole lifetime, even across flush + compaction + GC. (The
//! seed engine instead re-walked live structures per read and papered
//! over lost versions with a retry loop in the layer above.)
//!
//! Registration and sequence capture happen under one mutex, and the GC
//! reads the registry only *after* registering its own latest-sequence
//! pin. That ordering closes the race where a reader picks a sequence,
//! the GC (which never saw it) retires a value that sequence still
//! needs, and the reader dangles: any reader registered after the GC's
//! registry scan necessarily observes a sequence at or above the GC's
//! newest read point.

use crate::db::LsmReadResult;
use crate::iter::{
    BatchSweep, DbIter, InternalIterator, LevelIter, MergingIter, TableEntryIter, UserEntry,
    VecIter,
};
use crate::memtable::{MemGet, Memtable};
use crate::tcache::TableCache;
use crate::version::Version;
use bytes::Bytes;
use parking_lot::Mutex;
use scavenger_util::ikey::{make_internal_key, parse_internal_key, SeqNo, ValueType, MAX_SEQNO};
use scavenger_util::Result;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// An immutable snapshot of the tree's structure: the active memtable,
/// the frozen (immutable) memtables newest-first, and the SST file
/// layout. Installed atomically by every structural mutation; readers pin
/// it with a single `Arc` clone.
///
/// The active memtable keeps receiving concurrent inserts through the
/// shared `Arc`, but every insert carries a sequence above the reader's
/// visible sequence at pin time, so visibility filtering makes the view
/// immutable *as observed*.
pub struct SuperVersion {
    pub(crate) mem: Arc<Memtable>,
    /// Immutable memtables, newest first.
    pub(crate) imms: Vec<Arc<Memtable>>,
    pub(crate) version: Arc<Version>,
}

impl SuperVersion {
    /// An empty superversion (fresh tree).
    pub(crate) fn empty(num_levels: usize) -> SuperVersion {
        SuperVersion {
            mem: Arc::new(Memtable::new()),
            imms: Vec::new(),
            version: Arc::new(Version::empty(num_levels)),
        }
    }
}

/// What a registered read point represents. Both kinds protect the
/// versions visible at their sequence; only [`Snapshot`]s participate in
/// policy decisions that specifically concern long-lived user snapshots
/// (e.g. Titan's defer-GC-while-snapshots-exist gate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadPointKind {
    /// A transient pin taken by an in-flight read or GC job.
    Pin,
    /// A user-visible snapshot handle.
    Snapshot,
}

#[derive(Default)]
struct RegistryInner {
    pins: Vec<SeqNo>,
    snapshots: Vec<SeqNo>,
}

/// Registry of sequences that in-flight readers still need. Flush,
/// compaction, and GC must preserve the versions visible at every
/// registered sequence (plus the latest).
pub(crate) struct ReadPointRegistry {
    /// The engine's last-sequence counter; read under the registry lock
    /// so registration and sequence capture are one atomic step.
    seq: Arc<AtomicU64>,
    inner: Mutex<RegistryInner>,
}

impl ReadPointRegistry {
    pub(crate) fn new(seq: Arc<AtomicU64>) -> Arc<ReadPointRegistry> {
        Arc::new(ReadPointRegistry {
            seq,
            inner: Mutex::new(RegistryInner::default()),
        })
    }

    /// Register a read point at the current last sequence. The sequence
    /// is read under the registry lock: anyone who scans the registry
    /// (under the same lock) and then reads the last sequence is
    /// guaranteed to cover this registration.
    pub(crate) fn register(self: &Arc<Self>, kind: ReadPointKind) -> ReadPointGuard {
        let mut inner = self.inner.lock();
        let seq = self.seq.load(Ordering::SeqCst);
        match kind {
            ReadPointKind::Pin => inner.pins.push(seq),
            ReadPointKind::Snapshot => inner.snapshots.push(seq),
        }
        ReadPointGuard {
            seq,
            kind,
            registry: self.clone(),
        }
    }

    /// Register an additional pin at an already-protected sequence (used
    /// by iterators that must outlive the view they were opened from).
    pub(crate) fn register_at(self: &Arc<Self>, seq: SeqNo, kind: ReadPointKind) -> ReadPointGuard {
        let mut inner = self.inner.lock();
        match kind {
            ReadPointKind::Pin => inner.pins.push(seq),
            ReadPointKind::Snapshot => inner.snapshots.push(seq),
        }
        ReadPointGuard {
            seq,
            kind,
            registry: self.clone(),
        }
    }

    /// Sequences of registered user snapshots only, ascending.
    pub(crate) fn snapshot_seqs(&self) -> Vec<SeqNo> {
        let inner = self.inner.lock();
        let mut v = inner.snapshots.clone();
        v.sort_unstable();
        v
    }

    /// All registered read points (pins and snapshots), ascending and
    /// deduplicated.
    pub(crate) fn read_point_seqs(&self) -> Vec<SeqNo> {
        let inner = self.inner.lock();
        let mut v: Vec<SeqNo> = inner
            .pins
            .iter()
            .chain(inner.snapshots.iter())
            .copied()
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The oldest registered read point, if any reader is in flight.
    pub(crate) fn oldest(&self) -> Option<SeqNo> {
        let inner = self.inner.lock();
        inner
            .pins
            .iter()
            .chain(inner.snapshots.iter())
            .copied()
            .min()
    }

    /// `(transient pins, snapshots)` currently registered — the gauges
    /// surfaced by the engine's stats.
    pub(crate) fn counts(&self) -> (usize, usize) {
        let inner = self.inner.lock();
        (inner.pins.len(), inner.snapshots.len())
    }
}

/// A borrowed, transient pin for one-shot reads (`Lsm::get`): same
/// registration semantics as [`ReadPointGuard`] without the `Arc`
/// traffic of an owned guard — the hot point-read path stays within
/// noise of the unpinned engine.
pub(crate) struct TransientPin<'a> {
    seq: SeqNo,
    registry: &'a ReadPointRegistry,
}

impl TransientPin<'_> {
    pub(crate) fn sequence(&self) -> SeqNo {
        self.seq
    }
}

impl Drop for TransientPin<'_> {
    fn drop(&mut self) {
        let mut inner = self.registry.inner.lock();
        if let Some(pos) = inner.pins.iter().position(|&s| s == self.seq) {
            inner.pins.swap_remove(pos);
        }
    }
}

impl ReadPointRegistry {
    /// Register a transient pin at the current last sequence, borrowing
    /// the registry instead of cloning its `Arc`.
    pub(crate) fn pin_transient(&self) -> TransientPin<'_> {
        let mut inner = self.inner.lock();
        let seq = self.seq.load(Ordering::SeqCst);
        inner.pins.push(seq);
        TransientPin {
            seq,
            registry: self,
        }
    }
}

/// RAII registration of one read point; dropping it unregisters the
/// sequence.
pub struct ReadPointGuard {
    seq: SeqNo,
    kind: ReadPointKind,
    registry: Arc<ReadPointRegistry>,
}

impl ReadPointGuard {
    /// The registered sequence.
    pub fn sequence(&self) -> SeqNo {
        self.seq
    }
}

impl Drop for ReadPointGuard {
    fn drop(&mut self) {
        let mut inner = self.registry.inner.lock();
        let list = match self.kind {
            ReadPointKind::Pin => &mut inner.pins,
            ReadPointKind::Snapshot => &mut inner.snapshots,
        };
        if let Some(pos) = list.iter().position(|&s| s == self.seq) {
            list.swap_remove(pos);
        }
    }
}

/// A pinned, registered, strictly-consistent read view of the tree.
///
/// Obtained from [`Lsm::view`](crate::db::Lsm::view) (or through a
/// [`Snapshot`]). All reads resolve against the pinned [`SuperVersion`]
/// at the view's sequence; concurrent writes, flushes, compactions, and
/// GC jobs are never observed and can never invalidate the view.
pub struct LsmView {
    sv: Arc<SuperVersion>,
    seq: SeqNo,
    tcache: Arc<TableCache>,
    pin: ReadPointGuard,
}

impl LsmView {
    pub(crate) fn new(sv: Arc<SuperVersion>, tcache: Arc<TableCache>, pin: ReadPointGuard) -> Self {
        LsmView {
            sv,
            seq: pin.sequence(),
            tcache,
            pin,
        }
    }

    /// The sequence this view reads at.
    pub fn sequence(&self) -> SeqNo {
        self.seq
    }

    /// The pinned file-layout version.
    pub fn version(&self) -> &Arc<Version> {
        &self.sv.version
    }

    /// Point lookup at the view's sequence.
    pub fn get(&self, key: &[u8]) -> Result<LsmReadResult> {
        self.get_opt(key, true)
    }

    /// Point lookup with cache control: `fill_cache = false` bypasses the
    /// table-handle and block caches entirely (one-shot readers), so the
    /// lookup does not pollute them.
    pub fn get_opt(&self, key: &[u8], fill_cache: bool) -> Result<LsmReadResult> {
        read_superversion(&self.sv, &self.tcache, key, self.seq, fill_cache)
    }

    /// Point lookup at an earlier sequence than the view's own (e.g. a
    /// registered snapshot's). Sequences above the view's read whatever
    /// the pinned structures contain, which may be stale — pass only
    /// sequences `<=` [`sequence`](LsmView::sequence).
    pub fn get_at(&self, key: &[u8], read_seq: SeqNo) -> Result<LsmReadResult> {
        read_superversion(&self.sv, &self.tcache, key, read_seq, true)
    }

    /// Range scan of visible entries with `lo <= user_key < hi`
    /// (`hi = None` is unbounded) at the view's sequence. The returned
    /// iterator carries its own pin, so it stays strict even if the view
    /// is dropped first.
    pub fn scan(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<ScanIter> {
        self.scan_opt(lo, hi, true)
    }

    /// Range scan with cache control (see [`get_opt`](LsmView::get_opt)).
    pub fn scan_opt(&self, lo: &[u8], hi: Option<&[u8]>, fill_cache: bool) -> Result<ScanIter> {
        let pin = self.pin.registry.register_at(self.seq, ReadPointKind::Pin);
        scan_superversion(
            self.sv.clone(),
            &self.tcache,
            lo,
            hi,
            self.seq,
            fill_cache,
            Some(pin),
        )
    }
}

/// A read snapshot: an RAII handle owning a registered [`LsmView`].
/// Dropping it unregisters the sequence and unpins the structures.
///
/// This replaces the bare-`SeqNo` pattern of the previous API (take a
/// `Snapshot`, then call `get_at`/`scan_at` with `snapshot.sequence()`):
/// reads now go straight through the owned view —
/// [`get`](Snapshot::get) / [`scan`](Snapshot::scan) — which both pins
/// the structures and keeps the sequence registered. `sequence()` is
/// still available for the legacy entry points.
pub struct Snapshot {
    view: LsmView,
}

impl Snapshot {
    pub(crate) fn new(view: LsmView) -> Snapshot {
        Snapshot { view }
    }

    /// The snapshot's sequence number.
    pub fn sequence(&self) -> SeqNo {
        self.view.sequence()
    }

    /// The owned read view.
    pub fn view(&self) -> &LsmView {
        &self.view
    }

    /// Point lookup at the snapshot.
    pub fn get(&self, key: &[u8]) -> Result<LsmReadResult> {
        self.view.get(key)
    }

    /// Range scan at the snapshot.
    pub fn scan(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<ScanIter> {
        self.view.scan(lo, hi)
    }
}

/// Walk a pinned superversion for the newest version of `key` visible at
/// `read_seq`: active memtable, immutable memtables newest-first, then
/// the SST levels.
pub(crate) fn read_superversion(
    sv: &SuperVersion,
    tcache: &Arc<TableCache>,
    key: &[u8],
    read_seq: SeqNo,
    fill_cache: bool,
) -> Result<LsmReadResult> {
    match sv.mem.get(key, read_seq) {
        MemGet::Found { seq, vtype, value } => {
            return Ok(LsmReadResult::Found { seq, vtype, value });
        }
        MemGet::Deleted(_) => return Ok(LsmReadResult::Deleted),
        MemGet::NotFound => {}
    }
    for imm in &sv.imms {
        match imm.get(key, read_seq) {
            MemGet::Found { seq, vtype, value } => {
                return Ok(LsmReadResult::Found { seq, vtype, value });
            }
            MemGet::Deleted(_) => return Ok(LsmReadResult::Deleted),
            MemGet::NotFound => {}
        }
    }
    let version = &sv.version;
    let target = make_internal_key(key, read_seq, ValueType::ValueRef);
    // L0: newest file first.
    for f in &version.levels[0] {
        if !f.user_range_contains(key) {
            continue;
        }
        if let Some(r) = table_get(tcache, f.file_number, &target, key, fill_cache)? {
            return Ok(r);
        }
    }
    for level in 1..version.levels.len() {
        let files = &version.levels[level];
        if files.is_empty() {
            continue;
        }
        let idx =
            files.partition_point(|f| scavenger_util::ikey::extract_user_key(&f.largest) < key);
        if idx < files.len() && files[idx].user_range_contains(key) {
            if let Some(r) = table_get(tcache, files[idx].file_number, &target, key, fill_cache)? {
                return Ok(r);
            }
        }
    }
    Ok(LsmReadResult::NotFound)
}

/// Sequence of the newest version of `key` in a pinned superversion —
/// **including tombstones**, which [`read_superversion`] folds into
/// `Deleted` without a sequence. This is the read-set validation
/// primitive for optimistic transactions: a key conflicts iff its newest
/// version (write *or* delete) is newer than the transaction's read
/// point, so the walk must not lose the tombstone's sequence. Returns
/// `None` when no version of the key exists anywhere.
pub(crate) fn latest_version_seq(
    sv: &SuperVersion,
    tcache: &Arc<TableCache>,
    key: &[u8],
) -> Result<Option<SeqNo>> {
    let read_seq = MAX_SEQNO;
    match sv.mem.get(key, read_seq) {
        MemGet::Found { seq, .. } | MemGet::Deleted(seq) => return Ok(Some(seq)),
        MemGet::NotFound => {}
    }
    for imm in &sv.imms {
        match imm.get(key, read_seq) {
            MemGet::Found { seq, .. } | MemGet::Deleted(seq) => return Ok(Some(seq)),
            MemGet::NotFound => {}
        }
    }
    let version = &sv.version;
    let target = make_internal_key(key, read_seq, ValueType::ValueRef);
    for f in &version.levels[0] {
        if !f.user_range_contains(key) {
            continue;
        }
        if let Some(seq) = table_version_seq(tcache, f.file_number, &target, key)? {
            return Ok(Some(seq));
        }
    }
    for level in 1..version.levels.len() {
        let files = &version.levels[level];
        if files.is_empty() {
            continue;
        }
        let idx =
            files.partition_point(|f| scavenger_util::ikey::extract_user_key(&f.largest) < key);
        if idx < files.len() && files[idx].user_range_contains(key) {
            if let Some(seq) = table_version_seq(tcache, files[idx].file_number, &target, key)? {
                return Ok(Some(seq));
            }
        }
    }
    Ok(None)
}

/// Sequence of the newest version (any type) of `key` in one table.
fn table_version_seq(
    tcache: &Arc<TableCache>,
    file_number: u64,
    target: &[u8],
    key: &[u8],
) -> Result<Option<SeqNo>> {
    let table = tcache.get(file_number)?;
    if let Some((ikey, _)) = table.get(target)? {
        let parsed = parse_internal_key(&ikey)?;
        if parsed.user_key == key {
            return Ok(Some(parsed.seq));
        }
    }
    Ok(None)
}

fn table_get(
    tcache: &Arc<TableCache>,
    file_number: u64,
    target: &[u8],
    key: &[u8],
    fill_cache: bool,
) -> Result<Option<LsmReadResult>> {
    let table = if fill_cache {
        tcache.get(file_number)?
    } else {
        tcache.get_detached(file_number)?
    };
    if let Some((ikey, value)) = table.get(target)? {
        let parsed = parse_internal_key(&ikey)?;
        if parsed.user_key == key {
            return Ok(Some(match parsed.vtype {
                ValueType::Deletion => LsmReadResult::Deleted,
                t => LsmReadResult::Found {
                    seq: parsed.seq,
                    vtype: t,
                    value,
                },
            }));
        }
    }
    Ok(None)
}

/// Build a merged scan over a pinned superversion.
pub(crate) fn scan_superversion(
    sv: Arc<SuperVersion>,
    tcache: &Arc<TableCache>,
    lo: &[u8],
    hi: Option<&[u8]>,
    read_seq: SeqNo,
    fill_cache: bool,
    pin: Option<ReadPointGuard>,
) -> Result<ScanIter> {
    let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
    children.push(Box::new(VecIter::new(sv.mem.snapshot_range(lo, hi))));
    for imm in &sv.imms {
        children.push(Box::new(VecIter::new(imm.snapshot_range(lo, hi))));
    }
    for f in &sv.version.levels[0] {
        if f.user_range_overlaps(Some(lo), hi) {
            let table = if fill_cache {
                tcache.get(f.file_number)?
            } else {
                tcache.get_detached(f.file_number)?
            };
            children.push(Box::new(TableEntryIter::new(table)));
        }
    }
    for level in 1..sv.version.levels.len() {
        let files = sv.version.overlapping_files(level, Some(lo), hi);
        if !files.is_empty() {
            children.push(Box::new(LevelIter::with_fill_cache(
                files,
                tcache.clone(),
                fill_cache,
            )));
        }
    }
    let mut it = DbIter::new(MergingIter::new(children), read_seq);
    it.seek(lo);
    Ok(ScanIter {
        inner: it,
        hi: hi.map(|h| h.to_vec()),
        done: false,
        _sv: sv,
        _pin: pin,
    })
}

/// User-facing scan iterator with an exclusive upper bound. Holds the
/// superversion it iterates (so lazily-opened table files cannot be
/// purged mid-scan) and, when opened from a view, its own read-point pin.
///
/// Also implements [`Iterator`] over `Result<UserEntry>` (fusing after
/// the first error or end-of-range), mirroring the engine-level scan
/// iterators built on top of it.
pub struct ScanIter {
    inner: DbIter,
    hi: Option<Vec<u8>>,
    done: bool,
    _sv: Arc<SuperVersion>,
    _pin: Option<ReadPointGuard>,
}

impl ScanIter {
    /// Advance the merged iterator and apply the exclusive upper bound.
    fn bounded_next(&mut self) -> Result<Option<UserEntry>> {
        match self.inner.next_entry()? {
            Some(e) => {
                if let Some(h) = &self.hi {
                    if e.user_key.as_slice() >= h.as_slice() {
                        return Ok(None);
                    }
                }
                Ok(Some(e))
            }
            None => Ok(None),
        }
    }

    /// Next visible entry, or `None` past the bound / end of data (thin
    /// wrapper over the [`Iterator`] impl, sharing its fuse).
    pub fn next_entry(&mut self) -> Result<Option<UserEntry>> {
        self.next().transpose()
    }
}

impl Iterator for ScanIter {
    type Item = Result<UserEntry>;

    fn next(&mut self) -> Option<Result<UserEntry>> {
        if self.done {
            return None;
        }
        let pulled = self.bounded_next();
        scavenger_util::iter::fuse(&mut self.done, pulled)
    }
}

/// A shared, sorted memtable snapshot pinned by a [`BatchReader`].
type PinnedMemtable = Arc<Vec<(Vec<u8>, Bytes)>>;

/// A pinned, registered view of the tree materialized for batched,
/// co-sequential point lookups: any number of [`BatchSweep`]s can be
/// opened cheaply — one per GC read point. Produced by
/// [`Lsm::batch_reader`](crate::db::Lsm::batch_reader).
///
/// Built on an [`LsmView`], so the sweep sources are pinned *and* the
/// view's sequence is registered as a read point for the reader's whole
/// lifetime (the GC validation pipeline relies on this).
///
/// A `BatchReader` is `Send + Sync` (asserted by a compile-time test):
/// a GC job builds one reader up front and hands it to stage workers —
/// the pipelined executor's validate stage, or `gc_threads` parallel
/// sweep workers — which open per-thread sweeps over the shared pin.
pub struct BatchReader {
    mem: PinnedMemtable,
    imms: Vec<PinnedMemtable>,
    view: LsmView,
}

impl BatchReader {
    pub(crate) fn new(view: LsmView) -> BatchReader {
        let mem = Arc::new(view.sv.mem.snapshot());
        let imms: Vec<PinnedMemtable> = view
            .sv
            .imms
            .iter()
            .map(|m| Arc::new(m.snapshot()))
            .collect();
        BatchReader { mem, imms, view }
    }

    /// Open a sweep of the pinned view at `read_seq`. Children are built
    /// newest-source-first so merged ties resolve like a point lookup.
    pub fn sweep(&self, read_seq: SeqNo) -> Result<BatchSweep> {
        let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
        children.push(Box::new(VecIter::from_shared(self.mem.clone())));
        for imm in &self.imms {
            children.push(Box::new(VecIter::from_shared(imm.clone())));
        }
        let version = &self.view.sv.version;
        for f in &version.levels[0] {
            children.push(Box::new(TableEntryIter::new(
                self.view.tcache.get(f.file_number)?,
            )));
        }
        for level in 1..version.levels.len() {
            let files = &version.levels[level];
            if !files.is_empty() {
                children.push(Box::new(LevelIter::new(
                    files.clone(),
                    self.view.tcache.clone(),
                )));
            }
        }
        Ok(BatchSweep::new(children, read_seq))
    }

    /// The pinned file-layout version (kept alive while sweeps run).
    pub fn version(&self) -> &Arc<Version> {
        self.view.version()
    }

    /// The sequence this reader's pin registered as a read point: every
    /// version visible at or below it stays resolvable for the reader's
    /// lifetime.
    pub fn sequence(&self) -> SeqNo {
        self.view.sequence()
    }

    /// The underlying registered view.
    pub fn view(&self) -> &LsmView {
        &self.view
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The GC executor hands one `BatchReader` (and the `LsmView` inside
    /// it) across stage threads; this must never silently regress.
    #[test]
    fn batch_reader_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BatchReader>();
        assert_send_sync::<LsmView>();
    }
}
