//! Versions, version edits, and the manifest.
//!
//! A [`Version`] is an immutable snapshot of the LSM-tree's file layout
//! (which key SSTs live at which level). Mutations are expressed as
//! [`VersionEdit`]s, logged to the MANIFEST (in the WAL record format) and
//! applied copy-on-write to produce the next version — LevelDB's classic
//! design.
//!
//! Version edits also carry **value-store records** (new/deleted value
//! files, inheritance edges, exposed-garbage increments). The index LSM
//! owns the manifest, so these commit atomically with index changes; on
//! recovery they are replayed back to the value store in order.

use crate::filename::{current_path, manifest_path};
use crate::hooks::{NewValueFile, ValueEditBundle};
use crate::wal::{read_all_records, LogWriter};
use scavenger_env::{EnvRef, IoClass};
use scavenger_table::props::ValueDep;
use scavenger_util::coding::{
    get_length_prefixed_slice, get_varint32, get_varint64, put_length_prefixed_slice, put_varint32,
    put_varint64,
};
use scavenger_util::ikey::{cmp_internal, extract_user_key, SeqNo};
use scavenger_util::{Error, Result};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Metadata for one key SST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileMetaData {
    /// File number.
    pub file_number: u64,
    /// On-disk size in bytes.
    pub file_size: u64,
    /// Smallest internal key in the file.
    pub smallest: Vec<u8>,
    /// Largest internal key in the file.
    pub largest: Vec<u8>,
    /// Number of entries.
    pub num_entries: u64,
    /// Total bytes of separated values referenced by this file — the
    /// *compensation* term of the paper's compensated size (§III-C).
    pub ref_bytes: u64,
    /// Per-value-file dependency stats.
    pub deps: Vec<ValueDep>,
}

impl FileMetaData {
    /// `file_size + ref_bytes`: the size this file would have had in a
    /// non-separated LSM-tree.
    pub fn compensated_size(&self) -> u64 {
        self.file_size + self.ref_bytes
    }

    /// True if the file's user-key range contains `ukey`.
    pub fn user_range_contains(&self, ukey: &[u8]) -> bool {
        extract_user_key(&self.smallest) <= ukey && ukey <= extract_user_key(&self.largest)
    }

    /// True if the file's user-key range overlaps `[lo, hi]`
    /// (`None` bounds are unbounded).
    pub fn user_range_overlaps(&self, lo: Option<&[u8]>, hi: Option<&[u8]>) -> bool {
        let smallest = extract_user_key(&self.smallest);
        let largest = extract_user_key(&self.largest);
        if let Some(h) = hi {
            if smallest > h {
                return false;
            }
        }
        if let Some(l) = lo {
            if largest < l {
                return false;
            }
        }
        true
    }
}

/// A change to the file layout and/or the value store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VersionEdit {
    /// Updated next-file-number counter.
    pub next_file_number: Option<u64>,
    /// Updated last-sequence counter.
    pub last_sequence: Option<SeqNo>,
    /// WAL number below which logs are obsolete.
    pub log_number: Option<u64>,
    /// Files added, as `(level, meta)`.
    pub added: Vec<(usize, FileMetaData)>,
    /// Files removed, as `(level, file_number)`.
    pub deleted: Vec<(usize, u64)>,
    /// Value-store changes.
    pub value: ValueEditBundle,
}

impl VersionEdit {
    /// True if the edit changes nothing.
    pub fn is_empty(&self) -> bool {
        self.next_file_number.is_none()
            && self.last_sequence.is_none()
            && self.log_number.is_none()
            && self.added.is_empty()
            && self.deleted.is_empty()
            && self.value.is_empty()
    }

    /// Serialize to a manifest record.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(128);
        if let Some(n) = self.next_file_number {
            v.push(1);
            put_varint64(&mut v, n);
        }
        if let Some(n) = self.last_sequence {
            v.push(2);
            put_varint64(&mut v, n);
        }
        if let Some(n) = self.log_number {
            v.push(3);
            put_varint64(&mut v, n);
        }
        for (level, f) in &self.added {
            v.push(4);
            put_varint32(&mut v, *level as u32);
            put_varint64(&mut v, f.file_number);
            put_varint64(&mut v, f.file_size);
            put_length_prefixed_slice(&mut v, &f.smallest);
            put_length_prefixed_slice(&mut v, &f.largest);
            put_varint64(&mut v, f.num_entries);
            put_varint64(&mut v, f.ref_bytes);
            put_varint32(&mut v, f.deps.len() as u32);
            for d in &f.deps {
                put_varint64(&mut v, d.file);
                put_varint64(&mut v, d.entries);
                put_varint64(&mut v, d.ref_bytes);
            }
        }
        for (level, file) in &self.deleted {
            v.push(5);
            put_varint32(&mut v, *level as u32);
            put_varint64(&mut v, *file);
        }
        for f in &self.value.new_files {
            v.push(6);
            put_varint64(&mut v, f.file);
            put_varint64(&mut v, f.size);
            put_varint64(&mut v, f.entries);
            put_varint64(&mut v, f.value_bytes);
            v.push(u8::from(f.hot));
            v.push(f.format);
        }
        for f in &self.value.deleted_files {
            v.push(7);
            put_varint64(&mut v, *f);
        }
        for (old, new) in &self.value.inherits {
            v.push(8);
            put_varint64(&mut v, *old);
            put_varint64(&mut v, *new);
        }
        for (file, bytes, entries) in &self.value.garbage {
            v.push(9);
            put_varint64(&mut v, *file);
            put_varint64(&mut v, *bytes);
            put_varint64(&mut v, *entries);
        }
        v
    }

    /// Parse a manifest record.
    pub fn decode(mut src: &[u8]) -> Result<VersionEdit> {
        let mut edit = VersionEdit::default();
        while !src.is_empty() {
            let tag = src[0];
            src = &src[1..];
            match tag {
                1 => edit.next_file_number = Some(get_varint64(&mut src)?),
                2 => edit.last_sequence = Some(get_varint64(&mut src)?),
                3 => edit.log_number = Some(get_varint64(&mut src)?),
                4 => {
                    let level = get_varint32(&mut src)? as usize;
                    let file_number = get_varint64(&mut src)?;
                    let file_size = get_varint64(&mut src)?;
                    let smallest = get_length_prefixed_slice(&mut src)?.to_vec();
                    let largest = get_length_prefixed_slice(&mut src)?.to_vec();
                    let num_entries = get_varint64(&mut src)?;
                    let ref_bytes = get_varint64(&mut src)?;
                    let ndeps = get_varint32(&mut src)? as usize;
                    let mut deps = Vec::with_capacity(ndeps.min(1024));
                    for _ in 0..ndeps {
                        deps.push(ValueDep {
                            file: get_varint64(&mut src)?,
                            entries: get_varint64(&mut src)?,
                            ref_bytes: get_varint64(&mut src)?,
                        });
                    }
                    edit.added.push((
                        level,
                        FileMetaData {
                            file_number,
                            file_size,
                            smallest,
                            largest,
                            num_entries,
                            ref_bytes,
                            deps,
                        },
                    ));
                }
                5 => {
                    let level = get_varint32(&mut src)? as usize;
                    let file = get_varint64(&mut src)?;
                    edit.deleted.push((level, file));
                }
                6 => {
                    let file = get_varint64(&mut src)?;
                    let size = get_varint64(&mut src)?;
                    let entries = get_varint64(&mut src)?;
                    let value_bytes = get_varint64(&mut src)?;
                    if src.len() < 2 {
                        return Err(Error::corruption("truncated value-file record"));
                    }
                    let hot = src[0] != 0;
                    let format = src[1];
                    src = &src[2..];
                    edit.value.new_files.push(NewValueFile {
                        file,
                        size,
                        entries,
                        value_bytes,
                        hot,
                        format,
                    });
                }
                7 => edit.value.deleted_files.push(get_varint64(&mut src)?),
                8 => {
                    let old = get_varint64(&mut src)?;
                    let new = get_varint64(&mut src)?;
                    edit.value.inherits.push((old, new));
                }
                9 => {
                    let file = get_varint64(&mut src)?;
                    let bytes = get_varint64(&mut src)?;
                    let entries = get_varint64(&mut src)?;
                    edit.value.garbage.push((file, bytes, entries));
                }
                other => {
                    return Err(Error::corruption(format!("unknown edit tag {other}")));
                }
            }
        }
        Ok(edit)
    }
}

/// Immutable snapshot of the LSM-tree's file layout.
#[derive(Debug, Clone)]
pub struct Version {
    /// `levels[0]` is sorted newest-first (by file number descending);
    /// deeper levels are sorted by smallest key and non-overlapping.
    pub levels: Vec<Vec<Arc<FileMetaData>>>,
}

impl Version {
    /// An empty version with `num_levels` levels.
    pub fn empty(num_levels: usize) -> Version {
        Version {
            levels: vec![Vec::new(); num_levels],
        }
    }

    /// Apply an edit, producing the next version.
    pub fn apply(&self, edit: &VersionEdit) -> Result<Version> {
        let mut levels = self.levels.clone();
        for (level, file) in &edit.deleted {
            let lv = levels
                .get_mut(*level)
                .ok_or_else(|| Error::corruption("delete level out of range"))?;
            let before = lv.len();
            lv.retain(|f| f.file_number != *file);
            if lv.len() == before {
                return Err(Error::internal(format!(
                    "deleting missing file {file} at level {level}"
                )));
            }
        }
        for (level, meta) in &edit.added {
            let lv = levels
                .get_mut(*level)
                .ok_or_else(|| Error::corruption("add level out of range"))?;
            lv.push(Arc::new(meta.clone()));
        }
        // Restore invariants.
        levels[0].sort_by_key(|f| std::cmp::Reverse(f.file_number));
        for lv in levels.iter_mut().skip(1) {
            lv.sort_by(|a, b| cmp_internal(&a.smallest, &b.smallest));
            debug_assert!(
                lv.windows(2).all(|w| {
                    extract_user_key(&w[0].largest) < extract_user_key(&w[1].smallest)
                }),
                "level files must be disjoint"
            );
        }
        Ok(Version { levels })
    }

    /// Total bytes at `level`.
    pub fn level_bytes(&self, level: usize) -> u64 {
        self.levels[level].iter().map(|f| f.file_size).sum()
    }

    /// Total compensated bytes at `level` (paper §III-C).
    pub fn level_compensated(&self, level: usize) -> u64 {
        self.levels[level]
            .iter()
            .map(|f| f.compensated_size())
            .sum()
    }

    /// Number of files at `level`.
    pub fn num_files(&self, level: usize) -> usize {
        self.levels[level].len()
    }

    /// Total key-SST bytes across all levels.
    pub fn total_bytes(&self) -> u64 {
        (0..self.levels.len()).map(|l| self.level_bytes(l)).sum()
    }

    /// Total number of files.
    pub fn total_files(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Deepest level holding any file, or `None` if the tree is empty.
    pub fn bottommost_nonempty_level(&self) -> Option<usize> {
        (0..self.levels.len())
            .rev()
            .find(|&l| !self.levels[l].is_empty())
    }

    /// Files at `level` whose user-key range overlaps `[lo, hi]`.
    pub fn overlapping_files(
        &self,
        level: usize,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
    ) -> Vec<Arc<FileMetaData>> {
        self.levels[level]
            .iter()
            .filter(|f| f.user_range_overlaps(lo, hi))
            .cloned()
            .collect()
    }

    /// True if any file *below* `level` could contain `ukey` — used to
    /// decide whether a bottom-level tombstone may be dropped.
    pub fn key_may_exist_below(&self, level: usize, ukey: &[u8]) -> bool {
        self.levels
            .iter()
            .skip(level + 1)
            .any(|lv| lv.iter().any(|f| f.user_range_contains(ukey)))
    }

    /// The index-LSM space amplification estimate of the paper (§II-D,
    /// Eq. 1): total size over bottommost-level size.
    pub fn index_space_amp(&self) -> f64 {
        match self.bottommost_nonempty_level() {
            Some(l) => {
                let last = self.level_bytes(l) as f64;
                if last == 0.0 {
                    1.0
                } else {
                    self.total_bytes() as f64 / last
                }
            }
            None => 1.0,
        }
    }
}

/// Owns the current [`Version`], the counters, and the manifest log.
pub struct VersionSet {
    env: EnvRef,
    dir: String,
    num_levels: usize,
    current: Arc<Version>,
    next_file: Arc<AtomicU64>,
    last_seq: Arc<AtomicU64>,
    /// WALs numbered below this are obsolete.
    pub log_number: u64,
    manifest: LogWriter,
    manifest_number: u64,
    /// A manifest append or `sync()` failed. fsyncgate semantics: the
    /// unsynced tail of that file may never become durable even if a
    /// later fsync reports success, so the writer must rotate to a
    /// fresh manifest file before committing anything else.
    manifest_poisoned: bool,
    /// Every committed value-store bundle, in commit order — the same
    /// history a fresh open replays. Kept so a manifest rotation can
    /// rewrite a complete snapshot without consulting the value store.
    value_history: Vec<ValueEditBundle>,
    /// Weak handles to every version ever installed; used to decide when
    /// an obsolete file is no longer visible to any in-flight reader.
    live_versions: Vec<Weak<Version>>,
}

/// Result of opening a [`VersionSet`].
pub struct RecoveredState {
    /// The version set, positioned at the recovered (or fresh) state.
    pub vset: VersionSet,
    /// Value-store edits replayed from the manifest, in commit order.
    pub value_replay: Vec<ValueEditBundle>,
}

impl VersionSet {
    /// Open or create the version set in `dir`.
    pub fn open(env: EnvRef, dir: &str, num_levels: usize) -> Result<RecoveredState> {
        env.create_dir_all(dir)?;
        let mut version = Version::empty(num_levels);
        let mut next_file: u64 = 1;
        let mut last_seq: SeqNo = 0;
        let mut log_number: u64 = 0;
        let mut value_replay: Vec<ValueEditBundle> = Vec::new();
        let mut old_manifest: Option<(String, u64)> = None;

        let cur = current_path(dir);
        if env.file_exists(&cur) {
            let name = String::from_utf8(env.read_file(&cur, IoClass::Manifest)?.to_vec())
                .map_err(|_| Error::corruption("CURRENT not utf-8"))?;
            let name = name.trim().to_string();
            let mpath = format!("{dir}/{name}");
            let number: u64 = name
                .strip_prefix("MANIFEST-")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| Error::corruption("bad CURRENT contents"))?;
            let data = env.read_file(&mpath, IoClass::Manifest)?;
            let total = data.len();
            let (records, corrupt) = read_all_records(data);
            if corrupt {
                // A torn manifest tail is the expected power-loss shape:
                // the intact prefix is the committed history. Log it so
                // operators can distinguish truncation from data loss.
                eprintln!(
                    "scavenger: manifest {mpath} has a torn/corrupt tail \
                     (file is {total} bytes); recovering the intact prefix"
                );
            }
            for rec in records {
                let edit = VersionEdit::decode(&rec)?;
                if let Some(n) = edit.next_file_number {
                    next_file = next_file.max(n);
                }
                if let Some(n) = edit.last_sequence {
                    last_seq = last_seq.max(n);
                }
                if let Some(n) = edit.log_number {
                    log_number = log_number.max(n);
                }
                version = version.apply(&edit)?;
                if !edit.value.is_empty() {
                    value_replay.push(edit.value.clone());
                }
            }
            old_manifest = Some((mpath, number));
        }

        // Start a fresh manifest holding a snapshot of the recovered state
        // plus the value-store history, then swing CURRENT.
        let manifest_number = next_file;
        next_file += 1;
        let mpath = manifest_path(dir, manifest_number);
        let mut manifest = LogWriter::new(env.new_writable(&mpath, IoClass::Manifest)?);
        let mut snapshot = VersionEdit {
            next_file_number: Some(next_file),
            last_sequence: Some(last_seq),
            log_number: Some(log_number),
            ..VersionEdit::default()
        };
        for (level, files) in version.levels.iter().enumerate() {
            for f in files {
                snapshot.added.push((level, (**f).clone()));
            }
        }
        manifest.add_record(&snapshot.encode())?;
        for bundle in &value_replay {
            let edit = VersionEdit {
                value: bundle.clone(),
                ..VersionEdit::default()
            };
            manifest.add_record(&edit.encode())?;
        }
        manifest.sync()?;
        set_current(&env, dir, manifest_number)?;
        if let Some((old_path, _)) = old_manifest {
            let _ = env.remove_file(&old_path);
        }

        // Track the initial version like every later one: a pinned read
        // view may hold it across edits, and `referenced_files` must keep
        // its files on disk until that view drops.
        let current = Arc::new(version);
        let live_versions = vec![Arc::downgrade(&current)];
        Ok(RecoveredState {
            vset: VersionSet {
                env,
                dir: dir.to_string(),
                num_levels,
                current,
                next_file: Arc::new(AtomicU64::new(next_file)),
                last_seq: Arc::new(AtomicU64::new(last_seq)),
                log_number,
                manifest,
                manifest_number,
                manifest_poisoned: false,
                value_history: value_replay.clone(),
                live_versions,
            },
            value_replay,
        })
    }

    /// The live version.
    pub fn current(&self) -> Arc<Version> {
        self.current.clone()
    }

    /// Number of configured levels.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Shared next-file-number counter (for
    /// [`FileNumAlloc`](crate::hooks::FileNumAlloc)).
    pub fn file_counter(&self) -> Arc<AtomicU64> {
        self.next_file.clone()
    }

    /// Shared last-sequence counter.
    pub fn seq_counter(&self) -> Arc<AtomicU64> {
        self.last_seq.clone()
    }

    /// Allocate a fresh file number.
    pub fn new_file_number(&self) -> u64 {
        self.next_file.fetch_add(1, Ordering::SeqCst)
    }

    /// Current last sequence.
    pub fn last_sequence(&self) -> SeqNo {
        self.last_seq.load(Ordering::SeqCst)
    }

    /// Log `edit` to the manifest and apply it to the current version.
    ///
    /// If a previous commit poisoned the manifest (failed append or
    /// fsync), this first rotates to a fresh manifest file holding a
    /// full snapshot — the poisoned file is abandoned, never fsynced
    /// again, so a lying retried fsync can't silently commit its tail.
    pub fn log_and_apply(&mut self, mut edit: VersionEdit) -> Result<Arc<Version>> {
        if self.manifest_poisoned {
            self.rotate_manifest()?;
        }
        edit.next_file_number = Some(self.next_file.load(Ordering::SeqCst));
        edit.last_sequence = Some(self.last_seq.load(Ordering::SeqCst));
        if let Some(n) = edit.log_number {
            self.log_number = self.log_number.max(n);
        }
        let next = self.current.apply(&edit)?;
        if let Err(e) = self
            .manifest
            .add_record(&edit.encode())
            .and_then(|()| self.manifest.sync())
        {
            self.manifest_poisoned = true;
            return Err(e);
        }
        self.current = Arc::new(next);
        if !edit.value.is_empty() {
            self.value_history.push(edit.value.clone());
        }
        self.live_versions.push(Arc::downgrade(&self.current));
        self.live_versions.retain(|w| w.strong_count() > 0);
        Ok(self.current.clone())
    }

    /// Abandon the current manifest file and start a fresh one holding a
    /// full snapshot of the committed state (index layout, counters, and
    /// the complete value-store history), then swing `CURRENT` to it and
    /// delete the old file. Mirrors the fresh-manifest logic at open.
    fn rotate_manifest(&mut self) -> Result<()> {
        let number = self.next_file.fetch_add(1, Ordering::SeqCst);
        let mpath = manifest_path(&self.dir, number);
        let mut manifest = LogWriter::new(self.env.new_writable(&mpath, IoClass::Manifest)?);
        let mut snapshot = VersionEdit {
            next_file_number: Some(self.next_file.load(Ordering::SeqCst)),
            last_sequence: Some(self.last_seq.load(Ordering::SeqCst)),
            log_number: Some(self.log_number),
            ..VersionEdit::default()
        };
        for (level, files) in self.current.levels.iter().enumerate() {
            for f in files {
                snapshot.added.push((level, (**f).clone()));
            }
        }
        manifest.add_record(&snapshot.encode())?;
        for bundle in &self.value_history {
            let edit = VersionEdit {
                value: bundle.clone(),
                ..VersionEdit::default()
            };
            manifest.add_record(&edit.encode())?;
        }
        manifest.sync()?;
        set_current(&self.env, &self.dir, number)?;
        let old = manifest_path(&self.dir, self.manifest_number);
        let _ = self.env.remove_file(&old);
        self.manifest = manifest;
        self.manifest_number = number;
        self.manifest_poisoned = false;
        Ok(())
    }

    /// Verify the on-disk manifest is consistent with this version set —
    /// and repair it first (rotate away from a poisoned writer) if a
    /// previous commit failed. Used by `resume()` before clearing a
    /// degraded state: `CURRENT` must point at this manifest and every
    /// record in it must decode and apply cleanly.
    pub fn verify_and_repair(&mut self) -> Result<()> {
        if self.manifest_poisoned {
            self.rotate_manifest()?;
        }
        let cur = current_path(&self.dir);
        let name = String::from_utf8(self.env.read_file(&cur, IoClass::Manifest)?.to_vec())
            .map_err(|_| Error::corruption("CURRENT not utf-8"))?;
        let expect = format!("MANIFEST-{:06}", self.manifest_number);
        if name.trim() != expect {
            return Err(Error::corruption(format!(
                "CURRENT points at {} but the live manifest is {expect}",
                name.trim()
            )));
        }
        let mpath = manifest_path(&self.dir, self.manifest_number);
        let (records, corrupt) = read_all_records(self.env.read_file(&mpath, IoClass::Manifest)?);
        if corrupt {
            return Err(Error::corruption(format!(
                "manifest {mpath} has a corrupt record"
            )));
        }
        let mut version = Version::empty(self.num_levels);
        for rec in records {
            let edit = VersionEdit::decode(&rec)?;
            version = version.apply(&edit)?;
        }
        Ok(())
    }

    /// File numbers visible to the current version or to any version an
    /// in-flight reader still holds.
    pub fn referenced_files(&self) -> std::collections::HashSet<u64> {
        let mut live: std::collections::HashSet<u64> = self
            .current
            .levels
            .iter()
            .flatten()
            .map(|f| f.file_number)
            .collect();
        for w in &self.live_versions {
            if let Some(v) = w.upgrade() {
                live.extend(v.levels.iter().flatten().map(|f| f.file_number));
            }
        }
        live
    }

    /// Manifest file number (for obsolete-file scans).
    pub fn manifest_number(&self) -> u64 {
        self.manifest_number
    }

    /// Directory this version set lives in.
    pub fn dir(&self) -> &str {
        &self.dir
    }
}

fn set_current(env: &EnvRef, dir: &str, manifest_number: u64) -> Result<()> {
    let tmp = format!("{dir}/CURRENT.tmp");
    let mut f = env.new_writable(&tmp, IoClass::Manifest)?;
    f.append(format!("MANIFEST-{manifest_number:06}").as_bytes())?;
    f.sync()?;
    drop(f);
    env.rename(&tmp, &current_path(dir))
}

#[cfg(test)]
mod tests {
    use super::*;
    use scavenger_env::MemEnv;
    use scavenger_util::ikey::{make_internal_key, ValueType};

    fn meta(number: u64, lo: &[u8], hi: &[u8]) -> FileMetaData {
        FileMetaData {
            file_number: number,
            file_size: 1000,
            smallest: make_internal_key(lo, 100, ValueType::Value),
            largest: make_internal_key(hi, 1, ValueType::Value),
            num_entries: 10,
            ref_bytes: 0,
            deps: vec![],
        }
    }

    #[test]
    fn edit_roundtrip_full() {
        let edit = VersionEdit {
            next_file_number: Some(42),
            last_sequence: Some(9000),
            log_number: Some(7),
            added: vec![(
                1,
                FileMetaData {
                    file_number: 12,
                    file_size: 4096,
                    smallest: b"aaa\x01\x00\x00\x00\x00\x00\x00\x01".to_vec(),
                    largest: b"zzz\x01\x00\x00\x00\x00\x00\x00\x01".to_vec(),
                    num_entries: 55,
                    ref_bytes: 123456,
                    deps: vec![ValueDep {
                        file: 3,
                        entries: 10,
                        ref_bytes: 100000,
                    }],
                },
            )],
            deleted: vec![(0, 5), (0, 6)],
            value: ValueEditBundle {
                new_files: vec![NewValueFile {
                    file: 77,
                    size: 1 << 20,
                    entries: 100,
                    value_bytes: 900_000,
                    hot: true,
                    format: 1,
                }],
                deleted_files: vec![70],
                inherits: vec![(70, 77)],
                garbage: vec![(71, 5000, 3)],
            },
        };
        let decoded = VersionEdit::decode(&edit.encode()).unwrap();
        assert_eq!(decoded, edit);
    }

    #[test]
    fn edit_rejects_unknown_tag() {
        assert!(VersionEdit::decode(&[99]).is_err());
    }

    #[test]
    fn version_apply_adds_and_deletes() {
        let v0 = Version::empty(7);
        let mut edit = VersionEdit::default();
        edit.added.push((0, meta(1, b"a", b"m")));
        edit.added.push((0, meta(2, b"n", b"z")));
        let v1 = v0.apply(&edit).unwrap();
        assert_eq!(v1.num_files(0), 2);
        // L0 sorted newest (highest number) first.
        assert_eq!(v1.levels[0][0].file_number, 2);

        let mut edit2 = VersionEdit::default();
        edit2.deleted.push((0, 1));
        edit2.added.push((1, meta(3, b"a", b"m")));
        let v2 = v1.apply(&edit2).unwrap();
        assert_eq!(v2.num_files(0), 1);
        assert_eq!(v2.num_files(1), 1);
        assert_eq!(v2.total_files(), 2);
        // Deleting a missing file is an error.
        assert!(v2.apply(&edit2).is_err());
    }

    #[test]
    fn version_queries() {
        let v0 = Version::empty(7);
        let mut edit = VersionEdit::default();
        edit.added.push((1, meta(1, b"a", b"f")));
        edit.added.push((1, meta(2, b"m", b"p")));
        edit.added.push((2, meta(3, b"a", b"z")));
        let v = v0.apply(&edit).unwrap();
        assert_eq!(v.bottommost_nonempty_level(), Some(2));
        assert_eq!(v.overlapping_files(1, Some(b"e"), Some(b"n")).len(), 2);
        assert_eq!(v.overlapping_files(1, Some(b"g"), Some(b"h")).len(), 0);
        assert!(v.key_may_exist_below(1, b"q"));
        assert!(!v.key_may_exist_below(2, b"q"));
        assert_eq!(v.level_bytes(1), 2000);
        // index SA = total / last = 3000/1000.
        assert!((v.index_space_amp() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn fresh_open_then_reopen_recovers_state() {
        let env = MemEnv::shared();
        let eref: EnvRef = env.clone();
        {
            let rec = VersionSet::open(eref.clone(), "db", 7).unwrap();
            let mut vset = rec.vset;
            assert!(rec.value_replay.is_empty());
            let n1 = vset.new_file_number();
            let mut edit = VersionEdit::default();
            edit.added.push((0, meta(n1, b"a", b"z")));
            edit.value.new_files.push(NewValueFile {
                file: 99,
                size: 10,
                entries: 1,
                value_bytes: 5,
                hot: false,
                format: 1,
            });
            vset.log_and_apply(edit).unwrap();
            vset.seq_counter().store(500, Ordering::SeqCst);
            let mut edit2 = VersionEdit::default();
            edit2.value.garbage.push((99, 3, 1));
            vset.log_and_apply(edit2).unwrap();
        }
        // Reopen: file layout, counters, and value history must survive.
        let rec = VersionSet::open(eref, "db", 7).unwrap();
        assert_eq!(rec.vset.current().num_files(0), 1);
        assert_eq!(rec.vset.last_sequence(), 500);
        assert_eq!(rec.value_replay.len(), 2);
        assert_eq!(rec.value_replay[0].new_files[0].file, 99);
        assert_eq!(rec.value_replay[1].garbage[0], (99, 3, 1));
        // File numbers keep increasing.
        assert!(rec.vset.new_file_number() > 1);
    }

    #[test]
    fn reopen_twice_keeps_value_history_once() {
        let env = MemEnv::shared();
        let eref: EnvRef = env.clone();
        {
            let mut vset = VersionSet::open(eref.clone(), "db", 7).unwrap().vset;
            let mut edit = VersionEdit::default();
            edit.value.new_files.push(NewValueFile {
                file: 5,
                size: 10,
                entries: 1,
                value_bytes: 5,
                hot: false,
                format: 1,
            });
            vset.log_and_apply(edit).unwrap();
        }
        for _ in 0..3 {
            let rec = VersionSet::open(eref.clone(), "db", 7).unwrap();
            assert_eq!(rec.value_replay.len(), 1, "history must not duplicate");
        }
    }

    #[test]
    fn corrupt_current_is_reported() {
        let env = MemEnv::shared();
        let eref: EnvRef = env.clone();
        let _ = VersionSet::open(eref.clone(), "db", 7).unwrap();
        // Overwrite CURRENT with garbage.
        {
            let mut w = eref
                .new_writable(&current_path("db"), IoClass::Manifest)
                .unwrap();
            w.append(b"not-a-manifest-name").unwrap();
            w.sync().unwrap();
        }
        assert!(VersionSet::open(eref, "db", 7).is_err());
    }

    #[test]
    fn torn_manifest_tail_recovers_prefix() {
        let env = MemEnv::shared();
        let eref: EnvRef = env.clone();
        let manifest_path_str;
        {
            let mut vset = VersionSet::open(eref.clone(), "db", 7).unwrap().vset;
            manifest_path_str = manifest_path("db", vset.manifest_number());
            let mut e1 = VersionEdit::default();
            e1.added.push((0, meta(vset.new_file_number(), b"a", b"m")));
            vset.log_and_apply(e1).unwrap();
            let mut e2 = VersionEdit::default();
            e2.added.push((0, meta(vset.new_file_number(), b"n", b"z")));
            vset.log_and_apply(e2).unwrap();
        }
        // Tear the last few bytes of the manifest (crash mid-append).
        let len = eref.file_size(&manifest_path_str).unwrap();
        env.truncate_file(&manifest_path_str, len - 3).unwrap();
        // Recovery keeps the intact prefix: at least the first add-file
        // edit survives; the torn one is dropped cleanly.
        let rec = VersionSet::open(eref, "db", 7).unwrap();
        let files = rec.vset.current().num_files(0);
        assert!(files >= 1, "prefix edits recovered, got {files} files");
        assert!(files <= 2);
    }

    #[test]
    fn current_pointer_is_atomic_swap() {
        let env = MemEnv::shared();
        let eref: EnvRef = env.clone();
        let _ = VersionSet::open(eref.clone(), "db", 7).unwrap();
        let cur = eref
            .read_file(&current_path("db"), IoClass::Manifest)
            .unwrap();
        assert!(std::str::from_utf8(&cur).unwrap().starts_with("MANIFEST-"));
        assert!(!eref.file_exists("db/CURRENT.tmp"));
    }
}
