//! Configuration for the index LSM-tree.

use crate::hooks::ValueHook;
use scavenger_env::EnvRef;
use scavenger_table::btable::BlockCache;
use std::sync::Arc;

/// Format used for key SSTs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KTableFormat {
    /// RocksDB-style BlockBasedTable (baselines).
    BTable,
    /// Scavenger's IndexDecoupledTable (paper §III-B2).
    DTable,
}

/// Whether background work runs inline on the writer thread or on
/// background threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackgroundMode {
    /// Flush/compaction run synchronously inside `write()` — fully
    /// deterministic; used by the experiment harness so I/O accounting is
    /// exactly reproducible.
    Inline,
    /// Flush/compaction run on background threads (with write stalls when
    /// the immutable-memtable backlog grows), like a production engine.
    Threaded,
}

/// Options for opening an [`Lsm`](crate::db::Lsm).
#[derive(Clone)]
pub struct LsmOptions {
    /// Storage environment.
    pub env: EnvRef,
    /// Directory prefix for all files.
    pub dir: String,
    /// Memtable size that triggers a flush.
    pub memtable_size: usize,
    /// Number of L0 files that triggers an L0 → base-level compaction.
    pub l0_trigger: usize,
    /// `max_bytes_for_level_base`: target size of the base level
    /// (interpreted in *compensated* units when `compensated` is set).
    pub base_level_bytes: u64,
    /// Inter-level size multiplier (paper default: 10).
    pub level_multiplier: u64,
    /// Number of levels (RocksDB default: 7).
    pub num_levels: usize,
    /// Target key-SST file size for compaction outputs.
    pub target_file_size: u64,
    /// Data block size for key SSTs.
    pub block_size: usize,
    /// Bloom bits per key.
    pub bloom_bits_per_key: usize,
    /// Key SST format.
    pub ktable_format: KTableFormat,
    /// Score compaction by compensated size (paper §III-C) instead of raw
    /// file size.
    pub compensated: bool,
    /// Shared block cache (created if `None`).
    pub block_cache: Option<Arc<BlockCache>>,
    /// Cache namespace mixed into block-cache file ids (see
    /// [`scavenger_table::cache::cache_file_id`]). Must be unique per
    /// store when `block_cache` is shared across stores whose file
    /// numbers collide; `0` for a private cache.
    pub cache_namespace: u64,
    /// Block cache capacity when `block_cache` is `None`.
    pub block_cache_bytes: usize,
    /// Write WAL records (disable only for bulk loads in tests).
    pub wal: bool,
    /// Background execution mode.
    pub background: BackgroundMode,
    /// Max immutable memtables before writes stall (Threaded mode).
    pub max_imm_memtables: usize,
    /// How many times a *transient* background-job failure (flush,
    /// compaction) is retried before the engine degrades to read-only
    /// mode. Permanent failures (e.g. corruption) degrade immediately.
    pub bg_retry_limit: usize,
    /// Base delay for the bounded exponential backoff between background
    /// retries (`base * 2^attempt`).
    pub bg_retry_base: std::time::Duration,
    /// Value-store hook invoked by flush and compaction (KV separation,
    /// drop observation, BlobDB-style relocation). `None` = vanilla LSM.
    pub value_hook: Option<Arc<dyn ValueHook>>,
    /// Install superversions copy-on-write: each structural mutation
    /// swaps only the member it changed (active memtable, immutable
    /// list, or SST version) into a new bundle cloned from the current
    /// one, instead of rebuilding the whole bundle from the live
    /// structures under their locks. Produces bit-identical bundles;
    /// `false` selects the full-rebuild reference path (kept for
    /// equivalence tests and the install-cost microbench).
    pub cow_superversion: bool,
    /// Change-data-capture WAL retention budget, in bytes. Closed WAL
    /// segments are catalogued for subscriber catch-up instead of
    /// deleted, up to this many bytes of *speculative* history (history
    /// a registered subscriber still needs is always retained and
    /// accounted as pinned bytes instead). `0` disables speculative
    /// retention: WAL files are reclaimed exactly as before unless a
    /// live subscriber pins them.
    pub cdc_retention: u64,
    /// Byte budget for the in-memory change-event publication ring.
    /// Tailing subscribers are served from the ring; a cursor that
    /// falls below the ring's floor catches up from retained WAL
    /// segments.
    pub cdc_ring_bytes: u64,
}

impl LsmOptions {
    /// Reasonable scaled-down defaults (see DESIGN.md §6) on the given env.
    pub fn new(env: EnvRef, dir: impl Into<String>) -> Self {
        LsmOptions {
            env,
            dir: dir.into(),
            memtable_size: 256 * 1024,
            l0_trigger: 4,
            base_level_bytes: 4 * 1024 * 1024,
            level_multiplier: 10,
            num_levels: 7,
            target_file_size: 256 * 1024,
            block_size: 4096,
            bloom_bits_per_key: 10,
            ktable_format: KTableFormat::BTable,
            compensated: false,
            block_cache: None,
            cache_namespace: 0,
            block_cache_bytes: 1024 * 1024,
            wal: true,
            background: BackgroundMode::Inline,
            max_imm_memtables: 2,
            bg_retry_limit: 3,
            bg_retry_base: std::time::Duration::from_millis(10),
            value_hook: None,
            cow_superversion: true,
            cdc_retention: 0,
            cdc_ring_bytes: 1024 * 1024,
        }
    }

    /// Table-format options derived from these LSM options.
    pub fn table_options(&self) -> scavenger_table::btable::TableOptions {
        scavenger_table::btable::TableOptions {
            block_size: self.block_size,
            restart_interval: 16,
            bloom_bits_per_key: self.bloom_bits_per_key,
            cmp: scavenger_table::KeyCmp::Internal,
            index_partition_size: 2048,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scavenger_env::MemEnv;

    #[test]
    fn defaults_are_scaled_per_design_doc() {
        let opts = LsmOptions::new(MemEnv::shared(), "db");
        assert_eq!(opts.memtable_size, 256 * 1024);
        assert_eq!(opts.level_multiplier, 10);
        assert_eq!(opts.num_levels, 7);
        assert_eq!(opts.l0_trigger, 4);
        assert!(opts.wal);
        assert_eq!(opts.background, BackgroundMode::Inline);
        assert_eq!(opts.table_options().bloom_bits_per_key, 10);
    }
}
