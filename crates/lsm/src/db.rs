//! The index LSM-tree engine: write path, superversion-pinned read path,
//! snapshots, flush, compaction scheduling, WAL recovery, and
//! obsolete-file cleanup.
//!
//! All reads go through pinned [`LsmView`]s (see [`crate::view`]): the
//! engine installs a fresh [`SuperVersion`] at every structural mutation,
//! and a read pins one bundle + registers its sequence instead of walking
//! the live structures.

use crate::batch::{WriteBatch, WriteOptions, WriteReceipt};
use crate::compaction::{pick_compaction, run_output_job, Compaction, PickerState};
use crate::filename::{parse_path, table_path, wal_path, FileKind};
use crate::hooks::{FileNumAlloc, JobKind, PassthroughSession, ValueSession};
use crate::iter::{InternalIterator, MergingIter, TableEntryIter, VecIter};
use crate::memtable::Memtable;
use crate::options::{BackgroundMode, LsmOptions};
use crate::tcache::{open_ktable, TableCache};
use crate::version::{Version, VersionEdit, VersionSet};
use crate::view::{
    latest_version_seq, read_superversion, scan_superversion, BatchReader, LsmView, ReadPointKind,
    ReadPointRegistry, ScanIter, Snapshot, SuperVersion,
};
use crate::wal::LogWriter;
use bytes::Bytes;
use parking_lot::{Condvar, Mutex, RwLock};
use scavenger_env::IoClass;
use scavenger_table::btable::BlockCache;
use scavenger_util::ikey::{SeqNo, ValueRef, ValueType};
use scavenger_util::{Error, Result};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Result of a point lookup against the index LSM-tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LsmReadResult {
    /// No visible version.
    NotFound,
    /// Visible version is a tombstone.
    Deleted,
    /// Visible version found.
    Found {
        /// Sequence of the version.
        seq: SeqNo,
        /// `Value` (inline) or `ValueRef` (separated).
        vtype: ValueType,
        /// Payload.
        value: Bytes,
    },
}

/// A conditional put used by Titan-style GC write-back: the new reference
/// is installed only if the key still points at the expected old location.
#[derive(Debug, Clone)]
pub struct GuardedWrite {
    /// User key.
    pub key: Vec<u8>,
    /// The reference the GC read the value through.
    pub expected: ValueRef,
    /// The reference to the relocated value.
    pub replacement: ValueRef,
}

struct WriterState {
    wal: Option<LogWriter>,
    wal_number: u64,
    /// A `sync()` on the current WAL failed. fsyncgate semantics: the
    /// unsynced tail of that file can no longer be trusted to become
    /// durable, so the writer must rotate to a fresh WAL before
    /// accepting new records — never retry the fsync and report success.
    wal_poisoned: bool,
}

/// One writer's slot in the commit queue: its batch (taken by the
/// group leader), its durability request, and the result slot the
/// leader fills before waking it.
struct GroupMember {
    batch: Mutex<Option<WriteBatch>>,
    sync: bool,
    /// Change-stream transaction tag carried through from
    /// [`WriteOptions::txn_id`].
    txn_id: Option<u64>,
    result: Mutex<Option<Result<WriteReceipt>>>,
}

impl GroupMember {
    fn new(batch: WriteBatch, sync: bool, txn_id: Option<u64>) -> GroupMember {
        GroupMember {
            batch: Mutex::new(Some(batch)),
            sync,
            txn_id,
            result: Mutex::new(None),
        }
    }

    fn take_batch(&self) -> WriteBatch {
        self.batch
            .lock()
            .take()
            .expect("group member's batch taken twice")
    }

    fn fill(&self, res: Result<WriteReceipt>) {
        *self.result.lock() = Some(res);
    }

    fn take_result(&self) -> Option<Result<WriteReceipt>> {
        self.result.lock().take()
    }
}

/// The commit queue shared by all writers. The first writer to find no
/// leader active becomes the leader: it drains the queue, commits every
/// queued batch as one group (one WAL record, at most one fsync, one
/// memtable pass), fills each member's result slot, and hands
/// leadership off. Guarded by `Inner::group` with `Inner::group_cv` for
/// follower wakeup.
#[derive(Default)]
struct GroupState {
    queue: Vec<Arc<GroupMember>>,
    leader_active: bool,
}

struct ImmEntry {
    mem: Arc<Memtable>,
    wal_number: u64,
}

#[derive(Default)]
struct BgSignal {
    work_pending: bool,
    shutdown: bool,
}

/// Engine counters.
#[derive(Debug, Default)]
pub struct LsmCounters {
    /// Memtable flushes completed.
    pub flushes: AtomicU64,
    /// Compactions completed (excluding trivial moves).
    pub compactions: AtomicU64,
    /// Trivial moves applied.
    pub trivial_moves: AtomicU64,
    /// Writer stalls (threaded mode).
    pub stalls: AtomicU64,
    /// Entries dropped by merges (exposed garbage events).
    pub merge_drops: AtomicU64,
    /// Background jobs that failed permanently (after retries) and
    /// degraded the engine to read-only mode.
    pub bg_errors: AtomicU64,
    /// Transient background-job failures that were retried.
    pub bg_retries: AtomicU64,
    /// WALs whose tail was torn or corrupt at recovery (the intact
    /// prefix was replayed; the tail was dropped).
    pub wal_tail_corruptions: AtomicU64,
    /// Commit groups written (each is one WAL record + at most one
    /// fsync, regardless of how many batches rode in it).
    pub group_commit_groups: AtomicU64,
    /// Batches committed through the group-commit path. Under writer
    /// contention this exceeds `group_commit_groups` — the gap is the
    /// amortization win.
    pub group_commit_batches: AtomicU64,
    /// Largest number of batches ever committed in one group.
    pub group_commit_max_group: AtomicU64,
    /// Fsyncs avoided by riders: for every group that synced, each
    /// `sync = true` member beyond the first would have paid its own
    /// fsync on the serialized path.
    pub group_commit_fsyncs_saved: AtomicU64,
}

struct Inner {
    opts: LsmOptions,
    tcache: Arc<TableCache>,
    writer: Mutex<WriterState>,
    mem: RwLock<Arc<Memtable>>,
    imms: RwLock<Vec<ImmEntry>>,
    vset: Mutex<VersionSet>,
    seq: Arc<AtomicU64>,
    file_counter: Arc<AtomicU64>,
    picker: Mutex<PickerState>,
    read_points: Arc<ReadPointRegistry>,
    /// The current pinned-read bundle; replaced (never mutated) by
    /// [`Lsm::install_superversion`] after every structural change.
    sv: RwLock<Arc<SuperVersion>>,
    /// Serializes superversion rebuild+store so a slow installer cannot
    /// overwrite a newer bundle with a stale one.
    sv_install: Mutex<()>,
    /// Serializes [`Lsm::run_background_work`]: in inline mode every
    /// writer thread runs flushes/compactions on its own stack, and two
    /// threads picking the same imm to flush would double-flush it (one
    /// panics on the missing registration). Held for the whole
    /// flush-until-quiet loop.
    bg_work: Mutex<()>,
    /// The group-commit queue (see [`GroupState`]).
    group: Mutex<GroupState>,
    /// Wakes queued followers when a leader finishes a group (their
    /// result slot is filled) or hands leadership off.
    group_cv: Condvar,
    counters: LsmCounters,
    bg_signal: Mutex<BgSignal>,
    bg_cv: Condvar,
    stall_lock: Mutex<()>,
    stall_cv: Condvar,
    /// Cause of the current degraded state (kept for error messages and
    /// diagnostics; `degraded` is the gate).
    bg_error: Mutex<Option<Error>>,
    /// Read-only degraded mode: set by a permanent background failure,
    /// cleared by [`Lsm::resume`]. Writes fail fast with
    /// [`Error::ReadOnlyMode`]; reads, scans, and pinned views keep
    /// working.
    degraded: AtomicBool,
    /// Key-SST files replaced by compactions, awaiting deletion once no
    /// in-flight reader's version references them.
    pending_deletions: Mutex<Vec<u64>>,
    /// Change-data-capture hub: publication ring, retained-WAL catalog,
    /// and subscriber registry (see [`crate::changelog`]).
    cdc: Arc<crate::changelog::ChangeLog>,
    closed: AtomicBool,
}

/// Allocates file numbers from the shared counter.
struct CounterAlloc(Arc<AtomicU64>);

impl FileNumAlloc for CounterAlloc {
    fn next_file_number(&self) -> u64 {
        self.0.fetch_add(1, Ordering::SeqCst)
    }
}

/// The index LSM-tree.
pub struct Lsm {
    inner: Arc<Inner>,
    bg_thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

// The GC's parallel validation mode shares `&Lsm` across scoped worker
// threads; keep the engine `Sync` or that pipeline silently loses its
// worker pool.
#[allow(dead_code)]
fn _assert_lsm_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Lsm>();
}

impl Lsm {
    /// Open (or create) the tree, recovering manifest and WALs. Returns the
    /// engine and the value-store edit history for replay by the layer
    /// above.
    pub fn open(opts: LsmOptions) -> Result<(Lsm, Vec<crate::hooks::ValueEditBundle>)> {
        let env = opts.env.clone();
        env.create_dir_all(&opts.dir)?;
        let recovered = VersionSet::open(env.clone(), &opts.dir, opts.num_levels)?;
        let vset = recovered.vset;
        let value_replay = recovered.value_replay;
        let seq = vset.seq_counter();
        let file_counter = vset.file_counter();
        let block_cache = opts
            .block_cache
            .clone()
            .unwrap_or_else(|| Arc::new(BlockCache::with_capacity(opts.block_cache_bytes)));
        let tcache = Arc::new(TableCache::new(&opts, block_cache));

        let cdc = crate::changelog::ChangeLog::new(
            env.clone(),
            opts.dir.clone(),
            seq.clone(),
            opts.cdc_retention,
            opts.cdc_ring_bytes,
        );

        let inner = Arc::new(Inner {
            tcache,
            cdc,
            writer: Mutex::new(WriterState {
                wal: None,
                wal_number: 0,
                wal_poisoned: false,
            }),
            mem: RwLock::new(Arc::new(Memtable::new())),
            imms: RwLock::new(Vec::new()),
            read_points: ReadPointRegistry::new(seq.clone()),
            sv: RwLock::new(Arc::new(SuperVersion::empty(opts.num_levels))),
            sv_install: Mutex::new(()),
            bg_work: Mutex::new(()),
            group: Mutex::new(GroupState::default()),
            group_cv: Condvar::new(),
            seq,
            file_counter,
            picker: Mutex::new(PickerState::new(opts.num_levels)),
            counters: LsmCounters::default(),
            bg_signal: Mutex::new(BgSignal::default()),
            bg_cv: Condvar::new(),
            stall_lock: Mutex::new(()),
            stall_cv: Condvar::new(),
            bg_error: Mutex::new(None),
            degraded: AtomicBool::new(false),
            pending_deletions: Mutex::new(Vec::new()),
            closed: AtomicBool::new(false),
            vset: Mutex::new(vset),
            opts,
        });

        let db = Lsm {
            inner,
            bg_thread: Mutex::new(None),
        };
        db.install_superversion();
        db.recover_wals()?;
        db.start_fresh_wal()?;
        // start_fresh_wal logged a manifest edit (new log number), which
        // produced a fresh current version; re-sync the bundle so the
        // CoW install chain starts from an exact mirror of the live
        // structures.
        db.install_superversion();
        db.delete_obsolete_files()?;
        if db.inner.opts.background == BackgroundMode::Threaded {
            db.spawn_bg_thread();
        }
        Ok((db, value_replay))
    }

    /// The engine options.
    pub fn options(&self) -> &LsmOptions {
        &self.inner.opts
    }

    /// The change-data-capture hub: subscribe with
    /// [`ChangeLog::subscribe_from`](crate::changelog::ChangeLog) and
    /// friends; committed groups are published here in commit order.
    pub fn change_log(&self) -> Arc<crate::changelog::ChangeLog> {
        self.inner.cdc.clone()
    }

    /// Shared block cache.
    pub fn block_cache(&self) -> Arc<BlockCache> {
        self.inner.tcache.block_cache()
    }

    /// A file-number allocator backed by the engine's global counter.
    pub fn file_alloc(&self) -> Arc<dyn FileNumAlloc> {
        Arc::new(CounterAlloc(self.inner.file_counter.clone()))
    }

    /// Engine counters.
    pub fn counters(&self) -> &LsmCounters {
        &self.inner.counters
    }

    /// Last committed sequence number.
    pub fn last_sequence(&self) -> SeqNo {
        self.inner.seq.load(Ordering::SeqCst)
    }

    /// The live version (file layout).
    pub fn current_version(&self) -> Arc<Version> {
        self.inner.vset.lock().current()
    }

    // ---------------- superversion ----------------

    /// Rebuild the pinned-read bundle from the live structures and
    /// install it. This is the *full rebuild* path: it re-reads the
    /// active memtable, the immutable list, and the current version
    /// under their respective locks. Used at open/recovery (when no
    /// bundle exists yet to copy from) and as the reference
    /// implementation when [`LsmOptions::cow_superversion`] is off; every
    /// steady-state mutation goes through the copy-on-write installers
    /// below instead, which swap only the member they changed.
    fn install_superversion(&self) {
        // Rebuild under the install lock so a slower concurrent installer
        // cannot overwrite this (newer) bundle with an older one.
        let _install = self.inner.sv_install.lock();
        let sv = {
            let mem = self.inner.mem.read().clone();
            let imms: Vec<Arc<Memtable>> = self
                .inner
                .imms
                .read()
                .iter()
                .rev()
                .map(|e| e.mem.clone())
                .collect();
            let version = self.inner.vset.lock().current();
            Arc::new(SuperVersion { mem, imms, version })
        };
        *self.inner.sv.write() = sv;
    }

    // Copy-on-write installers. Each takes the install lock, clones the
    // *current* bundle's unchanged members (`Arc` clones, no structure
    // locks), swaps in the changed one, and stores the new bundle. The
    // install lock linearizes installs, so every bundle observes all
    // prior CoW updates — the mirror invariant (`sv` ≡ live structures
    // at quiescence) is preserved without ever re-reading the live
    // structures on the hot path.

    /// CoW install after a memtable rotation: `frozen` (the old active
    /// memtable) is prepended to the immutable list and `fresh` becomes
    /// the active member. The SST version is untouched — the bundle keeps
    /// whatever version is currently installed, which a concurrent
    /// version-swap installer may advance before or after this (both
    /// orders yield consistent bundles).
    fn install_sv_rotated(&self, fresh: Arc<Memtable>, frozen: Arc<Memtable>) {
        if !self.inner.opts.cow_superversion {
            return self.install_superversion();
        }
        let _install = self.inner.sv_install.lock();
        let old = self.inner.sv.read().clone();
        let mut imms = Vec::with_capacity(old.imms.len() + 1);
        imms.push(frozen);
        imms.extend(old.imms.iter().cloned());
        *self.inner.sv.write() = Arc::new(SuperVersion {
            mem: fresh,
            imms,
            version: old.version.clone(),
        });
    }

    /// CoW install after a flush commit: the flushed immutable memtable
    /// leaves the bundle and the SST version advances to the current one
    /// (which contains the new L0 file) in a single swap — readers never
    /// observe the flushed data both as a memtable and as an SST missing,
    /// nor doubled. The version is re-read from the version set under the
    /// install lock so concurrent version installs can never regress.
    fn install_sv_flushed(&self, flushed: &Arc<Memtable>) {
        if !self.inner.opts.cow_superversion {
            return self.install_superversion();
        }
        let _install = self.inner.sv_install.lock();
        let old = self.inner.sv.read().clone();
        let imms: Vec<Arc<Memtable>> = old
            .imms
            .iter()
            .filter(|m| !Arc::ptr_eq(m, flushed))
            .cloned()
            .collect();
        let version = self.inner.vset.lock().current();
        *self.inner.sv.write() = Arc::new(SuperVersion {
            mem: old.mem.clone(),
            imms,
            version,
        });
    }

    /// CoW install after a version-only change (compaction apply, trivial
    /// move, value-store edit): only the SST version member is swapped.
    /// The version is read from the version set *under the install lock*,
    /// not passed in, so two racing version installers always converge on
    /// the newest version regardless of install order.
    fn install_sv_version(&self) {
        if !self.inner.opts.cow_superversion {
            return self.install_superversion();
        }
        let _install = self.inner.sv_install.lock();
        let old = self.inner.sv.read().clone();
        let version = self.inner.vset.lock().current();
        *self.inner.sv.write() = Arc::new(SuperVersion {
            mem: old.mem.clone(),
            imms: old.imms.clone(),
            version,
        });
    }

    /// Pin the current superversion without registering a read point.
    fn superversion(&self) -> Arc<SuperVersion> {
        self.inner.sv.read().clone()
    }

    /// Take a pinned, registered read view at the latest sequence. All
    /// reads through the view are strictly consistent: the versions
    /// visible at its sequence survive concurrent flush, compaction, and
    /// GC for as long as the view lives.
    pub fn view(&self) -> LsmView {
        // Register first (capturing the sequence under the registry
        // lock), then pin the bundle: the bundle can only be newer than
        // the registration, never miss data at the registered sequence.
        let pin = self.inner.read_points.register(ReadPointKind::Pin);
        LsmView::new(self.superversion(), self.inner.tcache.clone(), pin)
    }

    fn registered_view(&self, kind: ReadPointKind) -> LsmView {
        let pin = self.inner.read_points.register(kind);
        LsmView::new(self.superversion(), self.inner.tcache.clone(), pin)
    }

    // ---------------- write path (group commit) ----------------

    /// Apply a batch atomically with a synced WAL record (default
    /// [`WriteOptions`]).
    pub fn write(&self, batch: WriteBatch) -> Result<WriteReceipt> {
        self.write_opts(&WriteOptions::default(), batch)
    }

    /// Apply a batch atomically through the group-commit queue.
    ///
    /// The writer enqueues its batch; the first writer to find no
    /// leader active becomes the leader, drains the queue, and commits
    /// every queued batch as one group: one WAL record covering all of
    /// them, a single fsync if any member asked for `sync = true`, one
    /// memtable pass, and contiguous per-batch sequence ranges.
    /// Followers sleep until the leader fills their result slot.
    ///
    /// Failure is group-scoped: a failed WAL append or fsync fails
    /// every member with the same error and poisons the WAL (the next
    /// write rotates away from it — fsyncgate semantics, never retried).
    /// Because the group is one WAL record, a crash tears it as a unit:
    /// recovery replays all of it or none of it.
    pub fn write_opts(&self, opts: &WriteOptions, batch: WriteBatch) -> Result<WriteReceipt> {
        if batch.is_empty() {
            return Ok(WriteReceipt {
                seq: self.last_sequence(),
                group_len: 0,
                synced: false,
            });
        }
        self.check_bg_error()?;
        self.maybe_stall();
        let member = Arc::new(GroupMember::new(batch, opts.sync, opts.txn_id));
        let mut st = self.inner.group.lock();
        st.queue.push(member.clone());
        loop {
            if let Some(res) = member.take_result() {
                // A leader committed this batch while we waited; that
                // leader also drives the background work.
                drop(st);
                return res;
            }
            if !st.leader_active {
                break;
            }
            self.inner.group_cv.wait(&mut st);
        }
        // Become the leader: drain the queue (our own batch included)
        // and commit it as one group.
        st.leader_active = true;
        let members: Vec<Arc<GroupMember>> = std::mem::take(&mut st.queue);
        drop(st);

        let outcome = {
            let mut ws = self.inner.writer.lock();
            let batches: Vec<WriteBatch> = members.iter().map(|m| m.take_batch()).collect();
            let syncs: Vec<bool> = members.iter().map(|m| m.sync).collect();
            let txn_ids: Vec<Option<u64>> = members.iter().map(|m| m.txn_id).collect();
            self.commit_group(&mut ws, batches, &syncs, &txn_ids)
        };
        match outcome {
            Ok(receipts) => {
                for (m, r) in members.iter().zip(receipts) {
                    m.fill(Ok(r));
                }
            }
            Err(e) => {
                // The whole group fails as a unit.
                for m in &members {
                    m.fill(Err(e.clone()));
                }
            }
        }
        {
            let mut st = self.inner.group.lock();
            st.leader_active = false;
            // Wake committed followers and let one queued straggler
            // take over as the next leader.
            self.inner.group_cv.notify_all();
        }
        let res = member
            .take_result()
            .expect("leader's own batch must be committed with its group");
        if res.is_ok() {
            // Only the leader runs background work for the group;
            // followers are already gone with their receipts.
            self.after_write()?;
        }
        res
    }

    /// Titan-style conditional write-back (paper §II-B): each entry is
    /// applied only if the key's newest version is still a reference to
    /// `expected`. Returns how many entries were applied.
    ///
    /// Guarded writes bypass the commit queue — the check must stay
    /// atomic with the apply, so the whole read-check-write runs under
    /// the writer lock as a group of one.
    pub fn write_guarded(&self, opts: &WriteOptions, writes: &[GuardedWrite]) -> Result<usize> {
        self.check_bg_error()?;
        self.maybe_stall();
        let applied;
        {
            let mut ws = self.inner.writer.lock();
            let mut batch = WriteBatch::new();
            for w in writes {
                // The writer lock is held: `get` sees the stable latest
                // version, and nothing can overwrite between check and
                // apply.
                if let LsmReadResult::Found {
                    vtype: ValueType::ValueRef,
                    value,
                    ..
                } = self.get(&w.key)?
                {
                    if let Ok(cur) = ValueRef::decode(&value) {
                        if cur.file == w.expected.file && cur.offset == w.expected.offset {
                            batch.put_ref(&w.key, w.replacement);
                        }
                    }
                }
            }
            applied = batch.count();
            if applied > 0 {
                self.commit_group(&mut ws, vec![batch], &[opts.sync], &[opts.txn_id])?;
            }
        }
        if applied > 0 {
            self.after_write()?;
        }
        Ok(applied)
    }

    /// Sequence of the newest version of `key` — **including
    /// tombstones** (unlike [`get`](Lsm::get), which folds a tombstone
    /// into `Deleted` without its sequence). `None` if no version of the
    /// key exists. This is the read-set validation primitive for
    /// optimistic transactions: a read of `key` at sequence `s` is still
    /// valid iff `latest_seq(key) <= s`.
    pub fn latest_seq(&self, key: &[u8]) -> Result<Option<SeqNo>> {
        let _pin = self.inner.read_points.pin_transient();
        let sv = self.superversion();
        latest_version_seq(&sv, &self.inner.tcache, key)
    }

    /// Validated commit for optimistic transactions: atomically check
    /// that every `(key, read_seq)` pair in `reads` is still current —
    /// no version of `key` (write *or* tombstone) newer than `read_seq`
    /// — and, only if all checks pass, commit `batch` through the WAL
    /// and memtable. The whole check-then-commit runs under the writer
    /// lock (a group of one, like [`write_guarded`](Lsm::write_guarded)),
    /// so no write can interleave between validation and apply: commits
    /// through this path are serializable with every other write.
    ///
    /// A stale read returns [`Error::TxnConflict`] and writes nothing.
    pub fn write_validated(
        &self,
        opts: &WriteOptions,
        batch: WriteBatch,
        reads: &[(Vec<u8>, SeqNo)],
    ) -> Result<WriteReceipt> {
        self.check_bg_error()?;
        self.maybe_stall();
        let receipt;
        {
            let mut ws = self.inner.writer.lock();
            for (key, read_seq) in reads {
                // The writer lock is held: `latest_seq` sees the stable
                // newest version, and nothing can commit between the
                // check and the apply below.
                if let Some(seq) = self.latest_seq(key)? {
                    if seq > *read_seq {
                        return Err(Error::txn_conflict(format!(
                            "key {:?} was written at sequence {seq}, after the \
                             transaction's read point {read_seq}",
                            String::from_utf8_lossy(key)
                        )));
                    }
                }
            }
            if batch.is_empty() {
                // A read-only transaction: validation is the whole
                // commit.
                return Ok(WriteReceipt {
                    seq: self.last_sequence(),
                    group_len: 0,
                    synced: false,
                });
            }
            let receipts = self.commit_group(&mut ws, vec![batch], &[opts.sync], &[opts.txn_id])?;
            receipt = receipts
                .into_iter()
                .next()
                .expect("commit_group returns one receipt per batch");
        }
        self.after_write()?;
        Ok(receipt)
    }

    /// Commit one group under the writer lock: merge the batches into a
    /// single WAL record (so a torn tail drops the group as a unit),
    /// fsync once if any member requested it, apply to the memtable in
    /// one pass, and assign each batch its contiguous sequence range.
    /// Returns one receipt per batch, in queue order.
    fn commit_group(
        &self,
        ws: &mut WriterState,
        batches: Vec<WriteBatch>,
        syncs: &[bool],
        txn_ids: &[Option<u64>],
    ) -> Result<Vec<WriteReceipt>> {
        debug_assert_eq!(batches.len(), syncs.len());
        debug_assert_eq!(batches.len(), txn_ids.len());
        if batches.is_empty() {
            return Ok(Vec::new());
        }
        let base = self.inner.seq.load(Ordering::SeqCst) + 1;
        let sync = syncs.iter().any(|s| *s);
        let group_len = batches.len() as u64;
        let mut merged = WriteBatch::new();
        let mut batch_ends = Vec::with_capacity(batches.len());
        for b in batches {
            merged.append(b);
            batch_ends.push(base + merged.count() as u64 - 1);
        }
        if self.inner.opts.wal {
            if ws.wal_poisoned {
                self.rotate_poisoned_wal(ws)?;
            }
            if let Some(wal) = ws.wal.as_mut() {
                wal.add_record(&merged.encode(base))?;
                if sync {
                    if let Err(e) = wal.sync() {
                        // fsyncgate: this WAL's unsynced tail may never
                        // reach disk even if a later fsync "succeeds".
                        // Poison the file; the next write rotates away
                        // from it instead of retrying the sync.
                        ws.wal_poisoned = true;
                        return Err(e);
                    }
                }
            }
        }
        let mem = self.inner.mem.read().clone();
        for (i, e) in merged.entries().iter().enumerate() {
            mem.insert(&e.key, base + i as u64, e.vtype, e.value.clone());
        }
        self.inner
            .seq
            .store(base + merged.count() as u64 - 1, Ordering::SeqCst);

        // Publish the committed group to the change stream — one
        // publish per group, in commit order (the writer lock is held),
        // after the sequence counter advanced so subscribers never see
        // events past the head. The merged batch is moved, not copied.
        let marks: Vec<(SeqNo, Option<u64>)> = if txn_ids.iter().any(|t| t.is_some()) {
            batch_ends
                .iter()
                .copied()
                .zip(txn_ids.iter().copied())
                .collect()
        } else {
            Vec::new()
        };
        self.inner.cdc.publish(base, merged, marks);

        let c = &self.inner.counters;
        c.group_commit_groups.fetch_add(1, Ordering::Relaxed);
        c.group_commit_batches
            .fetch_add(group_len, Ordering::Relaxed);
        c.group_commit_max_group
            .fetch_max(group_len, Ordering::Relaxed);
        if sync {
            let riders = syncs.iter().filter(|s| **s).count() as u64;
            c.group_commit_fsyncs_saved
                .fetch_add(riders - 1, Ordering::Relaxed);
        }

        if mem.approx_size() >= self.inner.opts.memtable_size {
            self.rotate_memtable(ws)?;
        }
        Ok(batch_ends
            .into_iter()
            .map(|seq| WriteReceipt {
                seq,
                group_len,
                synced: sync,
            })
            .collect())
    }

    fn after_write(&self) -> Result<()> {
        match self.inner.opts.background {
            BackgroundMode::Inline => self.run_background_with_retries(),
            BackgroundMode::Threaded => {
                let mut sig = self.inner.bg_signal.lock();
                sig.work_pending = true;
                self.inner.bg_cv.notify_all();
                Ok(())
            }
        }
    }

    fn rotate_memtable(&self, ws: &mut WriterState) -> Result<()> {
        // Register the active memtable as immutable BEFORE swapping it
        // out, so no state ever lacks the entries. Readers pin complete
        // superversions, and the fresh bundle is installed below while
        // the writer lock (`ws`) is still held — no write can land in the
        // new active memtable before readers can see it.
        let cur = self.inner.mem.read().clone();
        if cur.is_empty() {
            return Ok(());
        }
        self.inner.imms.write().push(ImmEntry {
            mem: cur.clone(),
            wal_number: ws.wal_number,
        });
        let fresh = Arc::new(Memtable::new());
        *self.inner.mem.write() = fresh.clone();
        self.install_sv_rotated(fresh, cur);
        if self.inner.opts.wal {
            self.fresh_wal_locked(ws)?;
        }
        Ok(())
    }

    /// Point the writer at a brand-new WAL file (and clear any poison).
    fn fresh_wal_locked(&self, ws: &mut WriterState) -> Result<()> {
        let closed = ws
            .wal
            .as_ref()
            .map(|w| (ws.wal_number, w.len(), ws.wal_poisoned));
        let n = self.inner.file_counter.fetch_add(1, Ordering::SeqCst);
        let f = self
            .inner
            .opts
            .env
            .new_writable(&wal_path(&self.inner.opts.dir, n), IoClass::Wal)?;
        ws.wal = Some(LogWriter::new(f));
        ws.wal_number = n;
        ws.wal_poisoned = false;
        // The old WAL becomes a retained catch-up segment (or is
        // released for deletion, per retention policy and subscribers).
        self.inner
            .cdc
            .rotate_live(closed, n, self.inner.seq.load(Ordering::SeqCst) + 1);
        Ok(())
    }

    /// Recover from a poisoned WAL (failed `sync()`): freeze the active
    /// memtable — it holds everything the old WAL covered, so a flush
    /// will persist it to SSTs — and rotate to a fresh WAL file. The
    /// poisoned handle is abandoned, never fsynced again.
    fn rotate_poisoned_wal(&self, ws: &mut WriterState) -> Result<()> {
        let cur = self.inner.mem.read().clone();
        if !cur.is_empty() {
            self.inner.imms.write().push(ImmEntry {
                mem: cur.clone(),
                wal_number: ws.wal_number,
            });
            let fresh = Arc::new(Memtable::new());
            *self.inner.mem.write() = fresh.clone();
            self.install_sv_rotated(fresh, cur);
        }
        self.fresh_wal_locked(ws)
    }

    fn maybe_stall(&self) {
        if self.inner.opts.background != BackgroundMode::Threaded {
            return;
        }
        let mut guard = self.inner.stall_lock.lock();
        let mut stalled = false;
        while self.inner.imms.read().len() > self.inner.opts.max_imm_memtables
            && !self.inner.closed.load(Ordering::SeqCst)
        {
            if !stalled {
                stalled = true;
                self.inner.counters.stalls.fetch_add(1, Ordering::Relaxed);
            }
            // Timed wait: the imm list is guarded by its own lock, so a
            // flush completing between our check and the wait could
            // otherwise be a lost wakeup.
            let _ = self
                .inner
                .stall_cv
                .wait_for(&mut guard, std::time::Duration::from_millis(20));
        }
    }

    fn check_bg_error(&self) -> Result<()> {
        if self.inner.degraded.load(Ordering::SeqCst) {
            let cause = self
                .inner
                .bg_error
                .lock()
                .as_ref()
                .map(|e| e.to_string())
                .unwrap_or_else(|| "unknown background error".into());
            return Err(Error::read_only(format!(
                "engine degraded by background failure: {cause}"
            )));
        }
        Ok(())
    }

    /// True when the engine is in read-only degraded mode (a background
    /// job failed permanently). Reads keep working; writes fail fast
    /// with [`Error::ReadOnlyMode`] until [`Lsm::resume`] clears it.
    pub fn is_degraded(&self) -> bool {
        self.inner.degraded.load(Ordering::SeqCst)
    }

    /// The background error that degraded the engine, if any.
    pub fn background_error(&self) -> Option<Error> {
        self.inner.bg_error.lock().clone()
    }

    /// Transient failures (I/O hiccups) are worth retrying; corruption
    /// and invariant violations are permanent.
    fn is_transient(e: &Error) -> bool {
        matches!(e, Error::Io(_))
    }

    /// Enter read-only degraded mode: record the cause, wake stalled
    /// writers (they fail fast instead of waiting forever).
    fn enter_degraded(&self, e: Error) {
        self.inner
            .counters
            .bg_errors
            .fetch_add(1, Ordering::Relaxed);
        *self.inner.bg_error.lock() = Some(e);
        self.inner.degraded.store(true, Ordering::SeqCst);
        self.inner.stall_cv.notify_all();
    }

    /// Run background work, retrying transient failures with bounded
    /// exponential backoff (`bg_retry_base * 2^attempt`, up to
    /// `bg_retry_limit` retries). A permanent failure — or exhausted
    /// retries — degrades the engine to read-only mode and returns the
    /// error. Used by both the inline write path and the background
    /// thread, so both execution modes share one error policy.
    fn run_background_with_retries(&self) -> Result<()> {
        let mut attempt = 0usize;
        loop {
            match self.run_background_work() {
                Ok(()) => return Ok(()),
                Err(e) => {
                    let retryable = Self::is_transient(&e)
                        && attempt < self.inner.opts.bg_retry_limit
                        && !self.inner.closed.load(Ordering::SeqCst);
                    if !retryable {
                        self.enter_degraded(e.clone());
                        return Err(e);
                    }
                    self.inner
                        .counters
                        .bg_retries
                        .fetch_add(1, Ordering::Relaxed);
                    let backoff = self
                        .inner
                        .opts
                        .bg_retry_base
                        .saturating_mul(1u32 << attempt.min(16));
                    attempt += 1;
                    std::thread::sleep(backoff);
                }
            }
        }
    }

    /// Leave read-only degraded mode after the underlying cause is
    /// fixed: verify (and if needed repair) the manifest, clear the
    /// error, and restart background work. Returns an error — and stays
    /// degraded — if the manifest cannot be verified.
    pub fn resume(&self) -> Result<()> {
        self.inner.vset.lock().verify_and_repair()?;
        *self.inner.bg_error.lock() = None;
        self.inner.degraded.store(false, Ordering::SeqCst);
        self.inner.stall_cv.notify_all();
        match self.inner.opts.background {
            BackgroundMode::Inline => self.run_background_with_retries(),
            BackgroundMode::Threaded => {
                let mut sig = self.inner.bg_signal.lock();
                sig.work_pending = true;
                self.inner.bg_cv.notify_all();
                Ok(())
            }
        }
    }

    // ---------------- read path ----------------

    /// Latest visible version of `key`, through a transient pinned view
    /// (single pass, strictly consistent).
    ///
    /// The pin is released on return; callers that must resolve a
    /// returned `ValueRef` against an external value store should use
    /// [`get_resolved`](Lsm::get_resolved) so the resolution happens
    /// while the read point is still registered.
    pub fn get(&self, key: &[u8]) -> Result<LsmReadResult> {
        self.get_resolved(key, Ok)
    }

    /// Latest visible version of `key`, with `resolve` invoked while the
    /// read's transient pin is still registered — the whole
    /// index-lookup-then-value-fetch sequence observes one point in
    /// time. This is the engine-above's single-pass `get` path.
    ///
    /// Hand-rolled instead of going through [`view`](Lsm::view): a
    /// borrowed pin plus one superversion grab keeps the hot path free
    /// of owned-guard `Arc` traffic.
    pub fn get_resolved<T>(
        &self,
        key: &[u8],
        resolve: impl FnOnce(LsmReadResult) -> Result<T>,
    ) -> Result<T> {
        // Register before pinning the bundle, like `view()`.
        let pin = self.inner.read_points.pin_transient();
        let sv = self.superversion();
        let r = read_superversion(&sv, &self.inner.tcache, key, pin.sequence(), true)?;
        resolve(r)
    }

    /// Version of `key` visible at `read_seq`, over the current pinned
    /// superversion.
    ///
    /// This does **not** register `read_seq`: strictness is only
    /// guaranteed when the caller holds a [`Snapshot`] or [`LsmView`]
    /// keeping that sequence registered — prefer reading through those
    /// handles directly.
    pub fn get_at(&self, key: &[u8], read_seq: SeqNo) -> Result<LsmReadResult> {
        read_superversion(
            &self.superversion(),
            &self.inner.tcache,
            key,
            read_seq,
            true,
        )
    }

    /// Pin the current state into a reusable [`BatchReader`] for batched,
    /// co-sequential point lookups (the GC's merge-validate path). The
    /// reader owns a registered view: concurrent writes after this call
    /// are not observed, and the versions visible at its sequence survive
    /// concurrent flush/compaction/GC — exactly the consistency a GC
    /// validation batch wants.
    pub fn batch_reader(&self) -> BatchReader {
        BatchReader::new(self.view())
    }

    /// Batched point lookups: the visible version of every key in
    /// `sorted_ukeys` (which MUST be in ascending user-key order) at each
    /// sequence in `read_points`, via one co-sequential sweep per read
    /// point. Returns one row per read point, each with one
    /// [`LsmReadResult`] per key. Equivalent to calling
    /// [`get_at`](Lsm::get_at) for every `(key, point)` pair, but
    /// amortizes version pinning, iterator construction, and block
    /// accesses across the whole batch.
    pub fn validate_batch(
        &self,
        sorted_ukeys: &[&[u8]],
        read_points: &[SeqNo],
    ) -> Result<Vec<Vec<LsmReadResult>>> {
        let reader = self.batch_reader();
        let mut out = Vec::with_capacity(read_points.len());
        for &pt in read_points {
            let mut sweep = reader.sweep(pt)?;
            let mut row = Vec::with_capacity(sorted_ukeys.len());
            for &k in sorted_ukeys {
                row.push(sweep.next_visible(k)?);
            }
            out.push(row);
        }
        Ok(out)
    }

    /// Take a read snapshot: an RAII handle owning a registered view.
    /// Dropping it unregisters the sequence.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot::new(self.snapshot_view())
    }

    /// A registered view with snapshot semantics: beyond pinning its
    /// versions, it participates in snapshot-gated policy (e.g. Titan's
    /// write-back GC defers while snapshots exist). The engine above
    /// wraps this in its own snapshot handle.
    pub fn snapshot_view(&self) -> LsmView {
        self.registered_view(ReadPointKind::Snapshot)
    }

    /// Sequences of all live user snapshots (ascending). Policy gates
    /// that specifically concern long-lived snapshots (e.g. Titan's
    /// defer-GC rule) read this; version-preservation decisions must use
    /// [`read_points`](Lsm::read_points) instead, which also covers
    /// transient view pins.
    pub fn snapshot_sequences(&self) -> Vec<SeqNo> {
        self.inner.read_points.snapshot_seqs()
    }

    /// All registered read points — snapshots *and* transient view pins —
    /// ascending and deduplicated. Flush, compaction, and GC must keep
    /// the versions visible at each of these sequences.
    pub fn read_points(&self) -> Vec<SeqNo> {
        self.inner.read_points.read_point_seqs()
    }

    /// The oldest registered read point, or `None` when no reader is in
    /// flight. Deferred-deletion barriers (Titan GC, BlobDB reaping)
    /// compare against this.
    pub fn oldest_read_point(&self) -> Option<SeqNo> {
        self.inner.read_points.oldest()
    }

    /// `(transient view pins, user snapshots)` currently registered.
    /// Gauges, not counters: a non-zero value means readers are in
    /// flight *right now*, holding back version retirement (and, in
    /// Titan/BlobDB modes, deferred blob reaping).
    pub fn read_point_counts(&self) -> (usize, usize) {
        self.inner.read_points.counts()
    }

    /// Range scan of visible entries with `lo <= user_key < hi`
    /// (`hi = None` is unbounded) at the latest sequence, through a
    /// pinned, registered view (the iterator owns the pin).
    pub fn scan(&self, lo: &[u8], hi: Option<&[u8]>) -> Result<ScanIter> {
        self.view().scan(lo, hi)
    }

    /// Range scan at a specific read sequence over the current pinned
    /// superversion. Like [`get_at`](Lsm::get_at), the sequence is not
    /// registered — the caller must hold the [`Snapshot`] or [`LsmView`]
    /// protecting it.
    pub fn scan_at(&self, lo: &[u8], hi: Option<&[u8]>, read_seq: SeqNo) -> Result<ScanIter> {
        scan_superversion(
            self.superversion(),
            &self.inner.tcache,
            lo,
            hi,
            read_seq,
            true,
            None,
        )
    }

    // ---------------- background work ----------------

    /// Run flushes and compactions until no work remains (inline mode);
    /// also callable directly by tests/harnesses. Safe to call from
    /// concurrent writer threads: the whole loop runs under `bg_work`,
    /// so one thread drains the queue while latecomers wait and then
    /// see an empty (or refilled) queue.
    pub fn run_background_work(&self) -> Result<()> {
        let _guard = self.inner.bg_work.lock();
        loop {
            let flushed = self.flush_one_imm()?;
            let compacted = self.maybe_compact_once()?;
            if !flushed && !compacted {
                // All job-held version handles are gone now; retired files
                // queued during the loop can be removed.
                self.purge_unreferenced_tables();
                return Ok(());
            }
        }
    }

    /// Force-flush the active memtable and wait until the tree is quiet.
    pub fn flush(&self) -> Result<()> {
        {
            let mut ws = self.inner.writer.lock();
            self.rotate_memtable(&mut ws)?;
        }
        match self.inner.opts.background {
            BackgroundMode::Inline => self.run_background_with_retries(),
            BackgroundMode::Threaded => {
                {
                    let mut sig = self.inner.bg_signal.lock();
                    sig.work_pending = true;
                    self.inner.bg_cv.notify_all();
                }
                // Wait for the background thread to drain.
                while !self.inner.imms.read().is_empty() {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    self.check_bg_error()?;
                    // Re-signal in case the drain raced with our rotate.
                    let mut sig = self.inner.bg_signal.lock();
                    sig.work_pending = true;
                    self.inner.bg_cv.notify_all();
                }
                Ok(())
            }
        }
    }

    /// Run compactions until every level score is below 1.
    pub fn compact_until_stable(&self) -> Result<()> {
        while self.maybe_compact_once()? {}
        Ok(())
    }

    /// Force one compaction even when all scores are below 1 — used by
    /// space-aware throttling (paper §III-D) to convert hidden garbage
    /// into exposed garbage when space runs out. Picks L0 if non-empty,
    /// otherwise the upper level carrying the most (compensated) bytes.
    /// Returns false if only the bottommost level holds data.
    pub fn force_compact_once(&self) -> Result<bool> {
        let version = self.current_version();
        let targets = crate::compaction::compute_targets(&version, &self.inner.opts);
        let last = self.inner.opts.num_levels - 1;
        let pick = if version.num_files(0) > 0 {
            let inputs_lo = version.levels[0].clone();
            let output_level = targets.base_level;
            let mut lo: Option<Vec<u8>> = None;
            let mut hi: Option<Vec<u8>> = None;
            for f in &inputs_lo {
                let s = scavenger_util::ikey::extract_user_key(&f.smallest).to_vec();
                let l = scavenger_util::ikey::extract_user_key(&f.largest).to_vec();
                lo = Some(match lo {
                    Some(c) if c <= s => c,
                    _ => s,
                });
                hi = Some(match hi {
                    Some(c) if c >= l => c,
                    _ => l,
                });
            }
            let inputs_hi = version.overlapping_files(output_level, lo.as_deref(), hi.as_deref());
            let bottommost = (output_level + 1..self.inner.opts.num_levels)
                .all(|l| version.levels[l].is_empty());
            Some(Compaction {
                level: 0,
                output_level,
                inputs_lo,
                inputs_hi,
                bottommost,
                score: 0.0,
            })
        } else {
            // Densest non-bottom level.
            let source = (1..last)
                .filter(|&l| !version.levels[l].is_empty())
                .max_by_key(|&l| {
                    if self.inner.opts.compensated {
                        version.level_compensated(l)
                    } else {
                        version.level_bytes(l)
                    }
                });
            source.map(|level| {
                let victim = version.levels[level]
                    .iter()
                    .max_by_key(|f| f.compensated_size())
                    .cloned()
                    .unwrap();
                let output_level = level + 1;
                let lo = scavenger_util::ikey::extract_user_key(&victim.smallest).to_vec();
                let hi = scavenger_util::ikey::extract_user_key(&victim.largest).to_vec();
                let inputs_hi = version.overlapping_files(output_level, Some(&lo), Some(&hi));
                let bottommost = (output_level + 1..self.inner.opts.num_levels)
                    .all(|l| version.levels[l].is_empty());
                Compaction {
                    level,
                    output_level,
                    inputs_lo: vec![victim],
                    inputs_hi,
                    bottommost,
                    score: 0.0,
                }
            })
        };
        match pick {
            Some(c) if c.is_trivial_move() => {
                let f = &c.inputs_lo[0];
                let mut edit = VersionEdit::default();
                edit.deleted.push((c.level, f.file_number));
                edit.added.push((c.output_level, (**f).clone()));
                self.inner.vset.lock().log_and_apply(edit)?;
                self.install_sv_version();
                self.inner
                    .counters
                    .trivial_moves
                    .fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
            Some(c) => {
                self.run_compaction(&version, &c)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn session_for(&self, kind: JobKind) -> Result<Box<dyn ValueSession>> {
        match &self.inner.opts.value_hook {
            Some(h) => h.session(
                kind,
                Arc::new(CounterAlloc(self.inner.file_counter.clone())),
            ),
            None => Ok(Box::new(PassthroughSession)),
        }
    }

    fn flush_one_imm(&self) -> Result<bool> {
        let (imm, wal_number) = {
            let imms = self.inner.imms.read();
            match imms.first() {
                Some(e) => (e.mem.clone(), e.wal_number),
                None => return Ok(false),
            }
        };
        let version = self.current_version();
        let bottommost = version.total_files() == 0;
        let session = self.session_for(JobKind::Flush)?;
        let snapshots = self.read_points();
        let counter = self.inner.file_counter.clone();
        let alloc = move || counter.fetch_add(1, Ordering::SeqCst);
        let mut input = VecIter::new(imm.snapshot());
        let out = run_output_job(
            &self.inner.opts,
            &mut input,
            &snapshots,
            bottommost,
            &|_| false,
            session,
            &alloc,
            IoClass::Flush,
        )?;
        self.inner
            .counters
            .merge_drops
            .fetch_add(out.stats.entries_dropped, Ordering::Relaxed);

        let mut edit = VersionEdit::default();
        for f in &out.files {
            edit.added.push((0, f.clone()));
        }
        edit.value = out.bundle.clone();
        // WALs strictly below the *next* imm's WAL (or the live WAL) are
        // obsolete once this flush commits. Lock order is writer -> imms
        // everywhere, so the imms guard must drop before the writer lock
        // is taken.
        let next_imm_wal = { self.inner.imms.read().get(1).map(|e| e.wal_number) };
        let next_needed = match next_imm_wal {
            Some(n) => n,
            None => self.inner.writer.lock().wal_number,
        };
        edit.log_number = Some(next_needed);
        self.inner.vset.lock().log_and_apply(edit)?;
        if let Some(h) = &self.inner.opts.value_hook {
            h.on_committed(&out.bundle);
        }
        {
            let mut imms = self.inner.imms.write();
            let pos = imms
                .iter()
                .position(|e| Arc::ptr_eq(&e.mem, &imm))
                .expect("flushed imm still registered");
            imms.remove(pos);
        }
        // Between log_and_apply and here, stale superversions double-count
        // the flushed imm alongside its new SST — identical versions, so
        // reads stay consistent; the fresh bundle drops the duplicate.
        // (During WAL recovery the flushed imm was never installed into a
        // bundle; the filter inside is then a no-op and only the version
        // member advances.)
        self.install_sv_flushed(&imm);
        let _ = wal_number;
        self.delete_obsolete_wals()?;
        self.inner.counters.flushes.fetch_add(1, Ordering::Relaxed);
        self.inner.stall_cv.notify_all();
        Ok(true)
    }

    fn maybe_compact_once(&self) -> Result<bool> {
        let version = self.current_version();
        let pick = {
            let mut picker = self.inner.picker.lock();
            pick_compaction(&version, &self.inner.opts, &mut picker)
        };
        let Some(c) = pick else {
            self.purge_unreferenced_tables();
            return Ok(false);
        };
        if c.is_trivial_move() {
            drop(version);
            let f = &c.inputs_lo[0];
            let mut edit = VersionEdit::default();
            edit.deleted.push((c.level, f.file_number));
            edit.added.push((c.output_level, (**f).clone()));
            self.inner.vset.lock().log_and_apply(edit)?;
            self.install_sv_version();
            self.inner
                .counters
                .trivial_moves
                .fetch_add(1, Ordering::Relaxed);
            return Ok(true);
        }
        self.run_compaction(&version, &c)?;
        drop(version);
        self.purge_unreferenced_tables();
        Ok(true)
    }

    fn run_compaction(&self, version: &Arc<Version>, c: &Compaction) -> Result<()> {
        // Open compaction-class readers (bypassing the table cache so
        // foreground I/O accounting stays clean; compaction reads do not
        // pollute the block cache, like RocksDB's fill_cache=false).
        let mut children: Vec<Box<dyn InternalIterator>> = Vec::new();
        for f in c.inputs_lo.iter().chain(c.inputs_hi.iter()) {
            let t = Arc::new(open_ktable(
                &self.inner.opts.env,
                &self.inner.opts.dir,
                f.file_number,
                self.inner.opts.cache_namespace,
                None,
                IoClass::Compaction,
            )?);
            children.push(Box::new(TableEntryIter::new(t)));
        }
        let mut input = MergingIter::new(children);
        let session = self.session_for(JobKind::Compaction {
            output_level: c.output_level,
            bottommost: c.bottommost,
        })?;
        let snapshots = self.read_points();
        let counter = self.inner.file_counter.clone();
        let alloc = move || counter.fetch_add(1, Ordering::SeqCst);
        let ver = version.clone();
        let output_level = c.output_level;
        let may_exist_below = move |ukey: &[u8]| ver.key_may_exist_below(output_level, ukey);
        let out = run_output_job(
            &self.inner.opts,
            &mut input,
            &snapshots,
            c.bottommost,
            &may_exist_below,
            session,
            &alloc,
            IoClass::Compaction,
        )?;
        self.inner
            .counters
            .merge_drops
            .fetch_add(out.stats.entries_dropped, Ordering::Relaxed);

        let mut edit = VersionEdit::default();
        for f in c.inputs_lo.iter() {
            edit.deleted.push((c.level, f.file_number));
        }
        for f in c.inputs_hi.iter() {
            edit.deleted.push((c.output_level, f.file_number));
        }
        for f in &out.files {
            edit.added.push((c.output_level, f.clone()));
        }
        edit.value = out.bundle.clone();
        self.inner.vset.lock().log_and_apply(edit)?;
        self.install_sv_version();
        if let Some(h) = &self.inner.opts.value_hook {
            h.on_committed(&out.bundle);
        }
        // Queue input files for deletion; they are removed once no
        // in-flight reader's version can still see them.
        {
            let mut pending = self.inner.pending_deletions.lock();
            pending.extend(
                c.inputs_lo
                    .iter()
                    .chain(c.inputs_hi.iter())
                    .map(|f| f.file_number),
            );
        }
        self.purge_unreferenced_tables();
        self.inner
            .counters
            .compactions
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Delete queued obsolete key SSTs that no live version references.
    fn purge_unreferenced_tables(&self) {
        let referenced = self.inner.vset.lock().referenced_files();
        let mut pending = self.inner.pending_deletions.lock();
        pending.retain(|n| {
            if referenced.contains(n) {
                true
            } else {
                self.inner.tcache.evict(*n);
                let _ = self
                    .inner
                    .opts
                    .env
                    .remove_file(&table_path(&self.inner.opts.dir, *n));
                false
            }
        });
    }

    /// Log a value-store-only edit (used by the GC, which changes value
    /// files without touching the index layout).
    pub fn apply_value_edit(&self, bundle: crate::hooks::ValueEditBundle) -> Result<()> {
        let edit = VersionEdit {
            value: bundle,
            ..VersionEdit::default()
        };
        self.inner.vset.lock().log_and_apply(edit)?;
        self.install_sv_version();
        Ok(())
    }

    // ---------------- recovery & cleanup ----------------

    fn recover_wals(&self) -> Result<()> {
        let opts = &self.inner.opts;
        let min_log = self.inner.vset.lock().log_number;
        let retain = self.inner.cdc.retains_history();
        let mut wals: Vec<u64> = opts
            .env
            .list_prefix(&format!("{}/", opts.dir))?
            .iter()
            .filter_map(|p| parse_path(&opts.dir, p))
            .filter(|(k, n)| *k == FileKind::Wal && (*n >= min_log || retain))
            .map(|(_, n)| n)
            .collect();
        wals.sort_unstable();
        let mut obsolete = Vec::new();
        let mut segs: Vec<(u64, SeqNo)> = Vec::new();
        for n in &wals {
            let path = wal_path(&opts.dir, *n);
            let data = opts.env.read_file(&path, IoClass::Wal)?;
            let total = data.len();
            let mut reader = crate::wal::LogReader::new(data);
            let mut records = Vec::new();
            while let Some(r) = reader.next_record() {
                records.push(r);
            }
            if reader.hit_corruption && *n >= min_log {
                // Torn or corrupt tail: the intact prefix is replayed,
                // the tail dropped. Count it and log the truncation
                // offset so operators can tell power-loss truncation
                // from silent data loss.
                self.inner
                    .counters
                    .wal_tail_corruptions
                    .fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "scavenger: WAL {path} has a torn/corrupt tail: \
                     replayed {} records, dropped {} bytes at offset {}",
                    records.len(),
                    reader.dropped_bytes,
                    total - reader.dropped_bytes
                );
            }
            // Sequence range of the file — the retained-segment
            // catalog entry for change-stream catch-up.
            let mut first_seq = None;
            let mut last_seq = 0;
            let replay = *n >= min_log;
            let mem = Memtable::new();
            let mut max_seq = self.inner.seq.load(Ordering::SeqCst);
            for rec in &records {
                let (base, batch) = WriteBatch::decode(rec)?;
                if batch.count() > 0 {
                    first_seq.get_or_insert(base);
                    last_seq = last_seq.max(base + batch.count() as u64 - 1);
                }
                if replay {
                    for (i, e) in batch.entries().iter().enumerate() {
                        mem.insert(&e.key, base + i as u64, e.vtype, e.value.clone());
                    }
                    max_seq = max_seq.max(base + batch.count() as u64 - 1);
                }
            }
            // Retained history stays on disk as a catch-up segment so
            // resumed subscribers can replay across the restart.
            // Register it *before* replaying: the flush below runs the
            // obsolete-WAL sweep, which must already see the file
            // protected.
            match first_seq {
                Some(first) if retain => {
                    self.inner
                        .cdc
                        .recovered_segment(*n, first, last_seq + 1, total as u64);
                    segs.push((*n, first));
                }
                _ => obsolete.push(*n),
            }
            if replay {
                self.inner.seq.store(max_seq, Ordering::SeqCst);
                if !mem.is_empty() {
                    self.inner.imms.write().push(ImmEntry {
                        mem: Arc::new(mem),
                        wal_number: *n,
                    });
                    // Flush synchronously so recovery is complete when
                    // open returns.
                    self.flush_one_imm()?;
                }
            }
        }
        // Clamp each segment's exclusive end by its successor's first
        // sequence: a WAL poisoned by a failed fsync may end in an
        // intact but never-acknowledged record whose sequences were
        // reassigned to the successor — the clamp excises it from
        // served history.
        for i in 0..segs.len() {
            if let Some(&(_, next_first)) = segs.get(i + 1) {
                self.inner.cdc.clamp_segment(segs[i].0, next_first);
            }
        }
        // WALs that were neither retained nor protected are obsolete.
        for n in obsolete {
            if !self.inner.cdc.protects(n) {
                let _ = opts.env.remove_file(&wal_path(&opts.dir, n));
            }
        }
        Ok(())
    }

    fn start_fresh_wal(&self) -> Result<()> {
        if !self.inner.opts.wal {
            return Ok(());
        }
        let n = self.inner.file_counter.fetch_add(1, Ordering::SeqCst);
        let f = self
            .inner
            .opts
            .env
            .new_writable(&wal_path(&self.inner.opts.dir, n), IoClass::Wal)?;
        let mut ws = self.inner.writer.lock();
        ws.wal = Some(LogWriter::new(f));
        ws.wal_number = n;
        self.inner
            .cdc
            .rotate_live(None, n, self.inner.seq.load(Ordering::SeqCst) + 1);
        // Record in the manifest that older WALs are obsolete.
        let edit = VersionEdit {
            log_number: Some(n),
            ..VersionEdit::default()
        };
        self.inner.vset.lock().log_and_apply(edit)?;
        Ok(())
    }

    fn delete_obsolete_wals(&self) -> Result<()> {
        let opts = &self.inner.opts;
        let min_log = self.inner.vset.lock().log_number;
        for p in opts.env.list_prefix(&format!("{}/", opts.dir))? {
            if let Some((FileKind::Wal, n)) = parse_path(&opts.dir, &p) {
                // A WAL below the recovery floor may still be a
                // retained change-stream segment: the catalog pins it
                // (for a registered subscriber or within the retention
                // budget) until the change log releases it.
                if n < min_log && !self.inner.cdc.protects(n) {
                    let _ = opts.env.remove_file(&p);
                }
            }
        }
        Ok(())
    }

    /// Delete key SSTs on disk that are not referenced by the live version
    /// (left over from a crash mid-compaction).
    pub fn delete_obsolete_files(&self) -> Result<()> {
        self.purge_unreferenced_tables();
        let opts = &self.inner.opts;
        let version = self.current_version();
        let live: HashSet<u64> = version
            .levels
            .iter()
            .flatten()
            .map(|f| f.file_number)
            .collect();
        for p in opts.env.list_prefix(&format!("{}/", opts.dir))? {
            if let Some((FileKind::Table, n)) = parse_path(&opts.dir, &p) {
                if !live.contains(&n) {
                    self.inner.tcache.evict(n);
                    let _ = opts.env.remove_file(&p);
                }
            }
        }
        self.delete_obsolete_wals()
    }

    // ---------------- threaded background ----------------

    fn spawn_bg_thread(&self) {
        let inner = self.inner.clone();
        let handle = std::thread::Builder::new()
            .name("scavenger-bg".into())
            .spawn(move || {
                let db = Lsm {
                    inner,
                    bg_thread: Mutex::new(None),
                };
                loop {
                    {
                        let mut sig = db.inner.bg_signal.lock();
                        while !sig.work_pending && !sig.shutdown {
                            db.inner.bg_cv.wait(&mut sig);
                        }
                        if sig.shutdown {
                            return;
                        }
                        sig.work_pending = false;
                    }
                    if db.inner.degraded.load(Ordering::SeqCst) {
                        // Parked, not dead: `resume()` clears the flag
                        // and re-signals, and this loop picks the
                        // backlog back up.
                        continue;
                    }
                    // On permanent failure the helper has already moved
                    // the engine to degraded mode; stay alive so resume
                    // can restart work without respawning the thread.
                    let _ = db.run_background_with_retries();
                }
            })
            .expect("spawn background thread");
        *self.bg_thread.lock() = Some(handle);
    }
}

impl Drop for Lsm {
    fn drop(&mut self) {
        self.inner.closed.store(true, Ordering::SeqCst);
        {
            let mut sig = self.inner.bg_signal.lock();
            sig.shutdown = true;
            self.inner.bg_cv.notify_all();
        }
        self.inner.stall_cv.notify_all();
        if let Some(h) = self.bg_thread.lock().take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scavenger_env::{Env, MemEnv};

    fn test_opts(dir: &str) -> LsmOptions {
        let mut o = LsmOptions::new(MemEnv::shared(), dir);
        o.memtable_size = 4 * 1024;
        o.base_level_bytes = 16 * 1024;
        o.target_file_size = 8 * 1024;
        o.block_size = 1024;
        o
    }

    fn open(o: LsmOptions) -> Lsm {
        Lsm::open(o).unwrap().0
    }

    fn put(db: &Lsm, k: &str, v: &str) {
        let mut b = WriteBatch::new();
        b.put(k.as_bytes(), Bytes::copy_from_slice(v.as_bytes()));
        db.write(b).unwrap();
    }

    fn del(db: &Lsm, k: &str) {
        let mut b = WriteBatch::new();
        b.delete(k.as_bytes());
        db.write(b).unwrap();
    }

    fn get_str(db: &Lsm, k: &str) -> Option<String> {
        match db.get(k.as_bytes()).unwrap() {
            LsmReadResult::Found { value, .. } => Some(String::from_utf8(value.to_vec()).unwrap()),
            _ => None,
        }
    }

    #[test]
    fn write_receipt_reports_range_and_durability() {
        let db = open(test_opts("db"));
        let mut b = WriteBatch::new();
        b.put(b"a", Bytes::from_static(b"1"));
        b.put(b"b", Bytes::from_static(b"2"));
        b.delete(b"c");
        let r = db.write(b).unwrap();
        assert_eq!(r.seq, db.last_sequence());
        assert_eq!(r.group_len, 1, "uncontended write is its own group");
        assert!(r.synced);

        let mut b = WriteBatch::new();
        b.put(b"d", Bytes::from_static(b"4"));
        let r2 = db.write_opts(&WriteOptions::with_sync(false), b).unwrap();
        assert_eq!(r2.seq, r.seq + 1, "ranges stay contiguous");
        assert!(!r2.synced, "no sync rider in the group");

        let c = db.counters();
        assert_eq!(c.group_commit_groups.load(Ordering::Relaxed), 2);
        assert_eq!(c.group_commit_batches.load(Ordering::Relaxed), 2);
        assert_eq!(c.group_commit_max_group.load(Ordering::Relaxed), 1);
        assert_eq!(c.group_commit_fsyncs_saved.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn empty_write_receipt_is_inert() {
        let db = open(test_opts("db"));
        put(&db, "k", "v");
        let r = db.write(WriteBatch::new()).unwrap();
        assert_eq!(r.seq, db.last_sequence());
        assert_eq!(r.group_len, 0);
        assert!(!r.synced);
        assert_eq!(
            db.counters().group_commit_groups.load(Ordering::Relaxed),
            1,
            "empty batches never reach the commit queue"
        );
    }

    #[test]
    fn concurrent_writers_form_groups_with_contiguous_ranges() {
        let db = Arc::new(open(test_opts("db")));
        let threads = 8;
        let per_thread = 50;
        let receipts: Vec<(usize, usize, WriteReceipt)> = std::thread::scope(|s| {
            let mut handles = Vec::new();
            for t in 0..threads {
                let db = db.clone();
                handles.push(s.spawn(move || {
                    let mut out = Vec::new();
                    for i in 0..per_thread {
                        let mut b = WriteBatch::new();
                        b.put(
                            format!("t{t:02}k{i:03}").as_bytes(),
                            Bytes::from(vec![t as u8; 32]),
                        );
                        b.put(
                            format!("t{t:02}k{i:03}x").as_bytes(),
                            Bytes::from(vec![i as u8; 32]),
                        );
                        let opts = WriteOptions::with_sync(i % 2 == 0);
                        out.push((t, i, db.write_opts(&opts, b).unwrap()));
                    }
                    out
                }));
            }
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        // Every batch owns a contiguous 2-sequence range ending at its
        // receipt seq; across all writers the end sequences are unique
        // and the ranges tile [first, last] without overlap.
        let mut ends: Vec<SeqNo> = receipts.iter().map(|(_, _, r)| r.seq).collect();
        ends.sort_unstable();
        ends.dedup();
        assert_eq!(ends.len(), threads * per_thread, "no duplicated ranges");
        for pair in ends.windows(2) {
            assert_eq!(pair[1] - pair[0], 2, "2-entry batches tile the range");
        }
        // No lost keys: every written key resolves to its value.
        for (t, i, _) in &receipts {
            match db.get(format!("t{t:02}k{i:03}").as_bytes()).unwrap() {
                LsmReadResult::Found { value, .. } => {
                    assert_eq!(&value[..], &vec![*t as u8; 32][..]);
                }
                other => panic!("t{t} i{i}: {other:?}"),
            }
        }
        let c = db.counters();
        let batches = c.group_commit_batches.load(Ordering::Relaxed);
        assert_eq!(batches, (threads * per_thread) as u64);
        assert!(
            c.group_commit_groups.load(Ordering::Relaxed) <= batches,
            "groups can never exceed batches"
        );
    }

    #[test]
    fn put_get_delete_within_memtable() {
        let db = open(test_opts("db"));
        put(&db, "k1", "v1");
        assert_eq!(get_str(&db, "k1"), Some("v1".into()));
        del(&db, "k1");
        assert_eq!(get_str(&db, "k1"), None);
        assert_eq!(db.get(b"k1").unwrap(), LsmReadResult::Deleted);
        assert_eq!(db.get(b"nope").unwrap(), LsmReadResult::NotFound);
    }

    #[test]
    fn data_survives_flush_and_compaction() {
        let db = open(test_opts("db"));
        for i in 0..500 {
            put(&db, &format!("key{i:04}"), &format!("val{i}").repeat(10));
        }
        db.flush().unwrap();
        db.compact_until_stable().unwrap();
        for i in 0..500 {
            assert_eq!(
                get_str(&db, &format!("key{i:04}")),
                Some(format!("val{i}").repeat(10)),
                "key{i}"
            );
        }
        assert!(db.counters().flushes.load(Ordering::Relaxed) > 0);
        assert!(db.current_version().total_files() > 0);
    }

    #[test]
    fn updates_shadow_older_versions_across_levels() {
        let db = open(test_opts("db"));
        for round in 0..5 {
            for i in 0..200 {
                put(&db, &format!("key{i:03}"), &format!("r{round}-{i}"));
            }
        }
        db.flush().unwrap();
        for i in 0..200 {
            assert_eq!(get_str(&db, &format!("key{i:03}")), Some(format!("r4-{i}")));
        }
    }

    #[test]
    fn deletes_survive_flush() {
        let db = open(test_opts("db"));
        for i in 0..100 {
            put(&db, &format!("key{i:03}"), "value");
        }
        db.flush().unwrap();
        for i in 0..100 {
            if i % 2 == 0 {
                del(&db, &format!("key{i:03}"));
            }
        }
        db.flush().unwrap();
        db.compact_until_stable().unwrap();
        for i in 0..100 {
            let got = get_str(&db, &format!("key{i:03}"));
            if i % 2 == 0 {
                assert_eq!(got, None, "key{i} must stay deleted");
            } else {
                assert_eq!(got, Some("value".into()));
            }
        }
    }

    #[test]
    fn scan_merges_all_sources_in_order() {
        let db = open(test_opts("db"));
        for i in (0..100).step_by(2) {
            put(&db, &format!("key{i:03}"), &format!("flushed{i}"));
        }
        db.flush().unwrap();
        for i in (1..100).step_by(2) {
            put(&db, &format!("key{i:03}"), &format!("fresh{i}"));
        }
        let mut it = db.scan(b"key000", Some(b"key050")).unwrap();
        let mut seen = Vec::new();
        while let Some(e) = it.next_entry().unwrap() {
            seen.push(String::from_utf8(e.user_key).unwrap());
        }
        let expected: Vec<String> = (0..50).map(|i| format!("key{i:03}")).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn scan_skips_deleted() {
        let db = open(test_opts("db"));
        for i in 0..20 {
            put(&db, &format!("k{i:02}"), "v");
        }
        db.flush().unwrap();
        del(&db, "k05");
        del(&db, "k10");
        let mut it = db.scan(b"k", None).unwrap();
        let mut n = 0;
        while let Some(e) = it.next_entry().unwrap() {
            assert_ne!(e.user_key, b"k05");
            assert_ne!(e.user_key, b"k10");
            n += 1;
        }
        assert_eq!(n, 18);
    }

    #[test]
    fn snapshot_reads_see_frozen_state() {
        let db = open(test_opts("db"));
        put(&db, "k", "old");
        let snap = db.snapshot();
        put(&db, "k", "new");
        del(&db, "k");
        assert_eq!(db.get(b"k").unwrap(), LsmReadResult::Deleted);
        match db.get_at(b"k", snap.sequence()).unwrap() {
            LsmReadResult::Found { value, .. } => assert_eq!(&value[..], b"old"),
            other => panic!("{other:?}"),
        }
        // Flush + compact with the snapshot alive: old version must survive.
        db.flush().unwrap();
        db.compact_until_stable().unwrap();
        match db.get_at(b"k", snap.sequence()).unwrap() {
            LsmReadResult::Found { value, .. } => assert_eq!(&value[..], b"old"),
            other => panic!("{other:?}"),
        }
        drop(snap);
    }

    #[test]
    fn wal_recovery_restores_unflushed_writes() {
        let env = MemEnv::shared();
        {
            let mut o = LsmOptions::new(env.clone(), "db");
            o.memtable_size = 1 << 20; // never flush
            let db = open(o);
            put(&db, "durable", "yes");
            put(&db, "also", "this");
            // No flush: data only in WAL + memtable. Drop = crash.
        }
        {
            let o = LsmOptions::new(env.clone(), "db");
            let db = open(o);
            assert_eq!(get_str(&db, "durable"), Some("yes".into()));
            assert_eq!(get_str(&db, "also"), Some("this".into()));
        }
    }

    #[test]
    fn torn_wal_tail_recovers_prefix() {
        let env = MemEnv::shared();
        {
            let mut o = LsmOptions::new(env.clone(), "db");
            o.memtable_size = 1 << 20;
            let db = open(o);
            put(&db, "a", "1");
            put(&db, "b", "2");
        }
        // Tear the tail of the newest WAL.
        let wals: Vec<String> = env
            .list_prefix("db/")
            .unwrap()
            .into_iter()
            .filter(|p| p.ends_with(".log"))
            .collect();
        let last = wals.last().unwrap();
        let len = env.file_size(last).unwrap();
        env.truncate_file(last, len - 3).unwrap();
        let db = open(LsmOptions::new(env.clone(), "db"));
        // First write survives; the torn one is gone.
        assert_eq!(get_str(&db, "a"), Some("1".into()));
        assert_eq!(get_str(&db, "b"), None);
    }

    #[test]
    fn sequence_numbers_survive_reopen() {
        let env = MemEnv::shared();
        let seq1;
        {
            let db = open(LsmOptions::new(env.clone(), "db"));
            put(&db, "x", "1");
            put(&db, "x", "2");
            seq1 = db.last_sequence();
            db.flush().unwrap();
        }
        let db = open(LsmOptions::new(env.clone(), "db"));
        assert!(db.last_sequence() >= seq1);
        put(&db, "y", "3");
        assert!(db.last_sequence() > seq1);
    }

    #[test]
    fn compaction_reduces_l0_files() {
        let mut o = test_opts("db");
        o.l0_trigger = 2;
        let db = open(o);
        for round in 0..6 {
            for i in 0..100 {
                put(&db, &format!("key{i:03}"), &format!("round{round}"));
            }
            db.flush().unwrap();
        }
        let v = db.current_version();
        assert!(
            v.num_files(0) < 2,
            "L0 should be drained by compaction, has {}",
            v.num_files(0)
        );
        assert!(db.counters().compactions.load(Ordering::Relaxed) > 0);
        // Data still correct.
        for i in 0..100 {
            assert_eq!(get_str(&db, &format!("key{i:03}")), Some("round5".into()));
        }
    }

    #[test]
    fn guarded_write_applies_only_when_ref_matches() {
        let db = open(test_opts("db"));
        let old_ref = ValueRef {
            file: 7,
            size: 100,
            offset: 40,
        };
        let new_ref = ValueRef {
            file: 9,
            size: 100,
            offset: 0,
        };
        let mut b = WriteBatch::new();
        b.put_ref(b"k1", old_ref);
        b.put_ref(b"k2", old_ref);
        db.write(b).unwrap();
        // k2 gets overwritten by the user before GC write-back.
        put(&db, "k2", "user-update");
        let applied = db
            .write_guarded(
                &WriteOptions::default(),
                &[
                    GuardedWrite {
                        key: b"k1".to_vec(),
                        expected: old_ref,
                        replacement: new_ref,
                    },
                    GuardedWrite {
                        key: b"k2".to_vec(),
                        expected: old_ref,
                        replacement: new_ref,
                    },
                ],
            )
            .unwrap();
        assert_eq!(applied, 1, "only k1 still points at the old ref");
        match db.get(b"k1").unwrap() {
            LsmReadResult::Found {
                vtype: ValueType::ValueRef,
                value,
                ..
            } => {
                assert_eq!(ValueRef::decode(&value).unwrap().file, 9);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(get_str(&db, "k2"), Some("user-update".into()));
    }

    #[test]
    fn threaded_mode_round_trip() {
        let mut o = test_opts("db");
        o.background = BackgroundMode::Threaded;
        let db = open(o);
        for i in 0..2000 {
            put(&db, &format!("key{i:05}"), &format!("value-{i}"));
        }
        db.flush().unwrap();
        for i in (0..2000).step_by(97) {
            assert_eq!(
                get_str(&db, &format!("key{i:05}")),
                Some(format!("value-{i}"))
            );
        }
    }

    #[test]
    fn obsolete_files_deleted_after_compaction() {
        let mut o = test_opts("db");
        o.l0_trigger = 2;
        let env = o.env.clone();
        let db = open(o);
        for round in 0..8 {
            for i in 0..100 {
                put(&db, &format!("key{i:03}"), &format!("r{round}"));
            }
            db.flush().unwrap();
        }
        // On-disk .sst files must match the live version exactly.
        let version = db.current_version();
        let live: HashSet<u64> = version
            .levels
            .iter()
            .flatten()
            .map(|f| f.file_number)
            .collect();
        let on_disk: HashSet<u64> = env
            .list_prefix("db/")
            .unwrap()
            .iter()
            .filter_map(|p| parse_path("db", p))
            .filter(|(k, _)| *k == FileKind::Table)
            .map(|(_, n)| n)
            .collect();
        assert_eq!(live, on_disk);
    }

    #[test]
    fn empty_batch_is_noop() {
        let db = open(test_opts("db"));
        let before = db.last_sequence();
        db.write(WriteBatch::new()).unwrap();
        assert_eq!(db.last_sequence(), before);
    }

    /// Batched co-sequential lookups must agree with point `get_at` for
    /// every key at every read point, across memtable, L0, and deeper
    /// levels, including tombstones and absent keys.
    #[test]
    fn validate_batch_matches_point_gets() {
        let db = open(test_opts("db"));
        // Several generations, forcing data into multiple levels.
        for round in 0..4 {
            for i in 0..150 {
                put(&db, &format!("key{i:04}"), &format!("r{round}-{i}"));
            }
            db.flush().unwrap();
        }
        let snap_seq = db.last_sequence();
        for i in (0..150).step_by(3) {
            put(&db, &format!("key{i:04}"), "fresh");
        }
        for i in (0..150).step_by(7) {
            del(&db, &format!("key{i:04}"));
        }
        // Leave some writes unflushed so the memtable participates.
        let latest = db.last_sequence();

        let mut keys: Vec<Vec<u8>> = (0..150)
            .map(|i| format!("key{i:04}").into_bytes())
            .collect();
        keys.push(b"absent-key".to_vec());
        keys.sort();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let points = [snap_seq, latest];
        let rows = db.validate_batch(&refs, &points).unwrap();
        assert_eq!(rows.len(), 2);
        for (row, &pt) in rows.iter().zip(points.iter()) {
            assert_eq!(row.len(), refs.len());
            for (k, got) in refs.iter().zip(row.iter()) {
                let want = db.get_at(k, pt).unwrap();
                assert_eq!(*got, want, "key {:?} at {pt}", String::from_utf8_lossy(k));
            }
        }
    }

    /// A sweep pins the pre-existing state: writes after `batch_reader`
    /// are invisible to it.
    #[test]
    fn batch_reader_pins_view() {
        let db = open(test_opts("db"));
        put(&db, "k", "old");
        let seq = db.last_sequence();
        let reader = db.batch_reader();
        put(&db, "k", "new");
        let mut sweep = reader.sweep(db.last_sequence()).unwrap();
        match sweep.next_visible(b"k").unwrap() {
            LsmReadResult::Found { value, seq: s, .. } => {
                assert_eq!(&value[..], b"old");
                assert_eq!(s, seq);
            }
            other => panic!("{other:?}"),
        }
    }

    /// A view pinned before rotation + flush + compaction still reads
    /// its epoch: the superversion bundle and the registered read point
    /// together keep every visible version resolvable.
    #[test]
    fn view_survives_rotate_flush_and_compaction() {
        let db = open(test_opts("db"));
        for i in 0..100 {
            put(&db, &format!("key{i:03}"), &format!("epoch0-{i}"));
        }
        let view = db.view();
        for round in 1..4 {
            for i in 0..100 {
                put(&db, &format!("key{i:03}"), &format!("epoch{round}-{i}"));
            }
            db.flush().unwrap();
        }
        db.compact_until_stable().unwrap();
        for i in (0..100).step_by(9) {
            match view.get(format!("key{i:03}").as_bytes()).unwrap() {
                LsmReadResult::Found { value, .. } => {
                    assert_eq!(&value[..], format!("epoch0-{i}").as_bytes());
                }
                other => panic!("view lost key{i}: {other:?}"),
            }
        }
        // Scans through the view also stay in the epoch.
        let mut it = view.scan(b"key", None).unwrap();
        let mut n = 0;
        while let Some(e) = it.next_entry().unwrap() {
            assert!(e.value.starts_with(b"epoch0-"), "scan mixed epochs");
            n += 1;
        }
        assert_eq!(n, 100);
        // The latest state reads the newest epoch.
        assert_eq!(get_str(&db, "key000"), Some("epoch3-0".into()));
    }

    /// Views register transient pins; snapshots register snapshot-kind
    /// read points; both unregister on drop.
    #[test]
    fn read_point_registration_is_raii() {
        let db = open(test_opts("db"));
        put(&db, "k", "v");
        assert!(db.oldest_read_point().is_none());
        let view = db.view();
        assert_eq!(db.oldest_read_point(), Some(view.sequence()));
        assert!(db.snapshot_sequences().is_empty());
        assert_eq!(db.read_points(), vec![view.sequence()]);
        let snap = db.snapshot();
        assert_eq!(db.snapshot_sequences(), vec![snap.sequence()]);
        drop(view);
        drop(snap);
        assert!(db.oldest_read_point().is_none());
        assert!(db.read_points().is_empty());
    }

    /// The batch reader owns a registered view, so GC validation batches
    /// hold a read point for their whole lifetime.
    #[test]
    fn batch_reader_registers_read_point() {
        let db = open(test_opts("db"));
        put(&db, "k", "v");
        let reader = db.batch_reader();
        assert_eq!(db.oldest_read_point(), Some(reader.view().sequence()));
        drop(reader);
        assert!(db.oldest_read_point().is_none());
    }

    /// The snapshot handle reads directly (get/scan) without the caller
    /// threading `sequence()` through `get_at`.
    #[test]
    fn snapshot_handle_reads_directly() {
        let db = open(test_opts("db"));
        put(&db, "k", "old");
        let snap = db.snapshot();
        put(&db, "k", "new");
        del(&db, "k");
        match snap.get(b"k").unwrap() {
            LsmReadResult::Found { value, .. } => assert_eq!(&value[..], b"old"),
            other => panic!("{other:?}"),
        }
        let mut it = snap.scan(b"", None).unwrap();
        let e = it.next_entry().unwrap().unwrap();
        assert_eq!(e.user_key, b"k");
        assert_eq!(&e.value[..], b"old");
        assert!(it.next_entry().unwrap().is_none());
    }

    /// After any quiescent sequence of mutations, the installed bundle
    /// must mirror the live structures exactly (same `Arc`s) — i.e. the
    /// copy-on-write install chain converges on precisely the bundle a
    /// full rebuild would produce. Checked for both install modes.
    #[test]
    fn cow_install_mirrors_live_structures() {
        for cow in [true, false] {
            let mut o = test_opts("db");
            o.cow_superversion = cow;
            let db = open(o);
            let check = |db: &Lsm, stage: &str| {
                let sv = db.inner.sv.read().clone();
                assert!(
                    Arc::ptr_eq(&sv.mem, &db.inner.mem.read()),
                    "cow={cow} {stage}: active memtable diverged"
                );
                let imms = db.inner.imms.read();
                assert_eq!(sv.imms.len(), imms.len(), "cow={cow} {stage}: imm count");
                for (got, want) in sv.imms.iter().zip(imms.iter().rev()) {
                    assert!(
                        Arc::ptr_eq(got, &want.mem),
                        "cow={cow} {stage}: imm order diverged"
                    );
                }
                drop(imms);
                assert!(
                    Arc::ptr_eq(&sv.version, &db.inner.vset.lock().current()),
                    "cow={cow} {stage}: SST version diverged"
                );
            };
            check(&db, "fresh");
            for round in 0..5 {
                for i in 0..120 {
                    put(&db, &format!("key{i:03}"), &format!("r{round}-{i}"));
                }
                check(&db, "after writes");
                db.flush().unwrap();
                check(&db, "after flush");
            }
            db.compact_until_stable().unwrap();
            check(&db, "after compaction");
            db.force_compact_once().unwrap();
            check(&db, "after forced compaction");
        }
    }

    /// The CoW install path and the full-rebuild path must be
    /// observationally identical: same reads, same scans, same file
    /// layout, under an op mix that exercises rotation, flush,
    /// compaction, trivial moves, and long-lived views.
    #[test]
    fn cow_install_is_equivalent_to_rebuild() {
        let run = |cow: bool| {
            let mut o = test_opts(if cow { "db-cow" } else { "db-rebuild" });
            o.cow_superversion = cow;
            let db = open(o);
            let mut pinned = Vec::new();
            for round in 0..6 {
                for i in 0..150 {
                    put(&db, &format!("key{i:04}"), &format!("r{round}-{i}"));
                }
                if round % 2 == 0 {
                    for i in (0..150).step_by(13) {
                        del(&db, &format!("key{i:04}"));
                    }
                }
                pinned.push(db.view());
                db.flush().unwrap();
            }
            db.compact_until_stable().unwrap();
            // Latest reads.
            let mut latest = Vec::new();
            for i in 0..150 {
                latest.push(get_str(&db, &format!("key{i:04}")));
            }
            // Full scan.
            let mut scanned = Vec::new();
            let mut it = db.scan(b"", None).unwrap();
            while let Some(e) = it.next_entry().unwrap() {
                scanned.push((e.user_key, e.value.to_vec()));
            }
            // Epoch reads through the pinned views.
            let mut epochs = Vec::new();
            for v in &pinned {
                epochs.push(match v.get(b"key0000").unwrap() {
                    LsmReadResult::Found { value, .. } => Some(value.to_vec()),
                    _ => None,
                });
            }
            // File layout.
            let version = db.current_version();
            let layout: Vec<Vec<u64>> = version
                .levels
                .iter()
                .map(|l| l.iter().map(|f| f.file_number).collect())
                .collect();
            drop(pinned);
            (latest, scanned, epochs, layout)
        };
        assert_eq!(run(true), run(false));
    }

    /// Dense batches advance by stepping, not re-seeking every key.
    #[test]
    fn sweep_steps_instead_of_seeking_dense_batches() {
        let db = open(test_opts("db"));
        for i in 0..400 {
            put(&db, &format!("key{i:04}"), "value-payload");
        }
        db.flush().unwrap();
        db.compact_until_stable().unwrap();
        let keys: Vec<Vec<u8>> = (0..400)
            .map(|i| format!("key{i:04}").into_bytes())
            .collect();
        let reader = db.batch_reader();
        let mut sweep = reader.sweep(db.last_sequence()).unwrap();
        for k in &keys {
            match sweep.next_visible(k).unwrap() {
                LsmReadResult::Found { .. } => {}
                other => panic!("{other:?}"),
            }
        }
        let stats = sweep.stats();
        assert!(
            stats.seeks < 40,
            "dense sweep should mostly step (seeks {}, steps {})",
            stats.seeks,
            stats.steps
        );
    }
}
