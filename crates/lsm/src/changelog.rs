//! Change-data-capture: an ordered, gap-free stream of committed write
//! events built on the group-commit/WAL infrastructure.
//!
//! Every committed group is published into a bounded in-memory ring at
//! apply time — one publish per group, under the writer lock, so the
//! ring observes exactly the commit order. The published unit is the
//! group's merged [`WriteBatch`] (moved, not copied: publication adds
//! zero byte copies to the write path) plus the per-member sequence
//! marks that let multi-batch groups keep per-transaction attribution.
//!
//! A subscriber holds a [`ChangeCursor`]: a registered low-water mark
//! (modeled on the read-point registry) naming the next sequence it
//! needs. Polling serves from the ring when the cursor is at or above
//! the ring's floor; below the floor it **catches up from retained WAL
//! segments** — closed WAL files are catalogued instead of deleted, and
//! the catalog pins them against reclamation for as long as a
//! registered subscriber still needs them. History kept for *future*
//! subscribers (no one registered below the floor) is bounded by
//! `cdc_retention` bytes; history a live subscriber needs is never
//! dropped, it is accounted as pinned bytes instead.
//!
//! Ordering/atomicity contract: events are delivered in strictly
//! increasing sequence order with no gaps and no duplicates, and only
//! for committed groups (a group that failed its WAL sync is never
//! published, and its torn WAL record is excluded from catch-up by the
//! segment's sequence range). Transaction ids tag live ring events;
//! catch-up replay reconstructs `(seq, key, op, value)` from the WAL,
//! which does not encode txn ids.

use crate::batch::WriteBatch;
use crate::filename::wal_path;
use bytes::Bytes;
use parking_lot::Mutex;
use scavenger_env::{EnvRef, IoClass};
use scavenger_util::ikey::{SeqNo, ValueType};
use scavenger_util::{Error, Result};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One committed write operation, as observed by a change subscriber.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeEvent {
    /// The operation's sequence number (its position in commit order).
    pub seq: SeqNo,
    /// Operation kind: `Value` (put), `Deletion` (tombstone), or
    /// `ValueRef` (an internal KV-separation relocation write).
    pub vtype: ValueType,
    /// User key.
    pub key: Vec<u8>,
    /// Value bytes (empty for tombstones; an encoded ref for
    /// `ValueRef` entries).
    pub value: Bytes,
    /// Transaction id for events committed through a transactional
    /// write, when known. `None` for plain writes and for events
    /// reconstructed from WAL catch-up (the WAL does not encode ids).
    pub txn_id: Option<u64>,
}

/// A published commit group: the merged batch plus per-member marks.
struct Group {
    base: SeqNo,
    batch: WriteBatch,
    /// `(last_seq_of_member, txn_id)` per group member, in order.
    /// Empty when no member carried a transaction id.
    marks: Vec<(SeqNo, Option<u64>)>,
}

impl Group {
    fn last(&self) -> SeqNo {
        self.base + self.batch.count() as u64 - 1
    }

    fn txn_for(&self, seq: SeqNo) -> Option<u64> {
        for (end, id) in &self.marks {
            if seq <= *end {
                return *id;
            }
        }
        None
    }
}

/// A WAL file retained for catch-up: covers sequences
/// `[first_seq, end_seq)`.
#[derive(Debug, Clone)]
struct Segment {
    number: u64,
    first_seq: SeqNo,
    /// Exclusive upper bound. Events at or past this bound in the file
    /// (a torn record from a poisoned WAL) were never committed and
    /// must not be served.
    end_seq: SeqNo,
    bytes: u64,
}

/// The WAL file currently being written.
#[derive(Debug, Clone, Copy)]
struct LiveWal {
    number: u64,
    first_seq: SeqNo,
}

struct SubEntry {
    id: u64,
    next_seq: SeqNo,
}

struct LogInner {
    ring: VecDeque<Group>,
    ring_bytes: u64,
    segments: VecDeque<Segment>,
    segment_bytes: u64,
    live: Option<LiveWal>,
    subs: Vec<SubEntry>,
}

/// The change-data-capture hub for one LSM tree: publication ring,
/// retained-segment catalog, and subscriber registry.
pub struct ChangeLog {
    env: EnvRef,
    dir: String,
    retention: u64,
    ring_budget: u64,
    /// Shared with the engine's sequence counter: the head of the
    /// stream is by definition the last committed sequence.
    seq: Arc<AtomicU64>,
    inner: Mutex<LogInner>,
    next_sub: AtomicU64,
    events_published: AtomicU64,
    catchup_reads: AtomicU64,
}

/// A snapshot of the change log's counters and gauges.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChangeLogStats {
    /// Total events published since open.
    pub events_published: u64,
    /// Registered subscribers.
    pub subscribers: u64,
    /// Bytes of closed WAL segments retained for catch-up.
    pub retained_wal_bytes: u64,
    /// Bytes held by the in-memory publication ring.
    pub ring_bytes: u64,
    /// WAL files read by catch-up polls since open.
    pub catchup_reads: u64,
    /// Head minus the slowest subscriber's cursor (0 when none lag).
    pub lag_seqs: u64,
}

impl ChangeLog {
    pub(crate) fn new(
        env: EnvRef,
        dir: String,
        seq: Arc<AtomicU64>,
        retention: u64,
        ring_budget: u64,
    ) -> Arc<ChangeLog> {
        Arc::new(ChangeLog {
            env,
            dir,
            retention,
            ring_budget,
            seq,
            inner: Mutex::new(LogInner {
                ring: VecDeque::new(),
                ring_bytes: 0,
                segments: VecDeque::new(),
                segment_bytes: 0,
                live: None,
                subs: Vec::new(),
            }),
            next_sub: AtomicU64::new(1),
            events_published: AtomicU64::new(0),
            catchup_reads: AtomicU64::new(0),
        })
    }

    // ---------------- write-path hooks ----------------

    /// Publish one committed group. Called by the commit path under the
    /// writer lock, after the sequence counter has advanced; the merged
    /// batch is moved in, so publication copies nothing.
    pub(crate) fn publish(&self, base: SeqNo, batch: WriteBatch, marks: Vec<(SeqNo, Option<u64>)>) {
        let count = batch.count() as u64;
        if count == 0 {
            return;
        }
        let bytes = batch.byte_size() as u64;
        let mut inner = self.inner.lock();
        inner.ring.push_back(Group { base, batch, marks });
        inner.ring_bytes += bytes;
        while inner.ring_bytes > self.ring_budget && inner.ring.len() > 1 {
            if let Some(g) = inner.ring.pop_front() {
                inner.ring_bytes -= g.batch.byte_size() as u64;
            }
        }
        drop(inner);
        self.events_published.fetch_add(count, Ordering::Relaxed);
    }

    /// The writer rotated to a fresh WAL. `closed` describes the file
    /// being rotated away (`(number, bytes, poisoned)`), if one was
    /// open. Poisoned files may end in a torn, never-acknowledged
    /// record; the segment's sequence range already excludes it because
    /// the failed group never advanced the sequence counter — but a
    /// poisoned file is dropped from the catalog entirely when it holds
    /// no committed history.
    pub(crate) fn rotate_live(
        &self,
        closed: Option<(u64, u64, bool)>,
        new_number: u64,
        new_first_seq: SeqNo,
    ) {
        let mut inner = self.inner.lock();
        if let Some(live) = inner.live.take() {
            if let Some((number, bytes, _poisoned)) = closed {
                debug_assert_eq!(live.number, number);
                if new_first_seq > live.first_seq {
                    let seg_bytes = bytes;
                    inner.segments.push_back(Segment {
                        number: live.number,
                        first_seq: live.first_seq,
                        end_seq: new_first_seq,
                        bytes: seg_bytes,
                    });
                    inner.segment_bytes += seg_bytes;
                }
            }
        }
        inner.live = Some(LiveWal {
            number: new_number,
            first_seq: new_first_seq,
        });
        self.trim_locked(&mut inner);
    }

    /// Register a WAL file found on disk at recovery as a retained
    /// catch-up segment covering `[first_seq, end_seq)`.
    pub(crate) fn recovered_segment(
        &self,
        number: u64,
        first_seq: SeqNo,
        end_seq: SeqNo,
        bytes: u64,
    ) {
        if end_seq <= first_seq {
            return;
        }
        let mut inner = self.inner.lock();
        inner.segments.push_back(Segment {
            number,
            first_seq,
            end_seq,
            bytes,
        });
        inner.segment_bytes += bytes;
        self.trim_locked(&mut inner);
    }

    /// Lower a recovered segment's exclusive end to `max_end`,
    /// removing the segment entirely when nothing remains. Recovery
    /// registers each WAL before replaying it (replay may trigger the
    /// obsolete-file sweep, which must already see the file protected)
    /// and clamps afterwards, once the successor's first sequence is
    /// known, to excise never-acknowledged records from poisoned tails.
    pub(crate) fn clamp_segment(&self, number: u64, max_end: SeqNo) {
        let mut inner = self.inner.lock();
        if let Some(pos) = inner.segments.iter().position(|s| s.number == number) {
            let seg = &mut inner.segments[pos];
            if seg.end_seq <= max_end {
                return;
            }
            if max_end <= seg.first_seq {
                let bytes = seg.bytes;
                inner.segments.remove(pos);
                inner.segment_bytes -= bytes;
            } else {
                seg.end_seq = max_end;
            }
        }
    }

    /// True when WAL file `number` must not be deleted: it is either
    /// the live WAL or a retained catch-up segment.
    pub(crate) fn protects(&self, number: u64) -> bool {
        let inner = self.inner.lock();
        if inner.live.map(|l| l.number) == Some(number) {
            return true;
        }
        inner.segments.iter().any(|s| s.number == number)
    }

    /// Speculative retention is configured (`cdc_retention > 0`):
    /// recovery keeps replayed WALs as catch-up segments instead of
    /// deleting them.
    pub(crate) fn retains_history(&self) -> bool {
        self.retention > 0
    }

    // ---------------- subscriber surface ----------------

    /// The last committed sequence (the stream head).
    pub fn head_seq(&self) -> SeqNo {
        self.seq.load(Ordering::SeqCst)
    }

    /// The oldest sequence still servable (ring or retained WAL), or
    /// `head + 1` when no history is available.
    pub fn earliest_seq(&self) -> SeqNo {
        let inner = self.inner.lock();
        self.earliest_locked(&inner)
    }

    fn earliest_locked(&self, inner: &LogInner) -> SeqNo {
        let mut earliest = match inner.segments.front() {
            Some(s) => s.first_seq,
            None => match inner.live {
                Some(l) => l.first_seq,
                None => self.head_seq() + 1,
            },
        };
        if let Some(front) = inner.ring.front() {
            earliest = earliest.min(front.base);
        }
        earliest
    }

    /// Register a subscriber whose next wanted sequence is `from_seq`.
    /// Fails when that history has already been reclaimed (the error
    /// names the earliest still-available sequence).
    pub fn subscribe_from(self: &Arc<Self>, from_seq: SeqNo) -> Result<ChangeCursor> {
        let mut inner = self.inner.lock();
        let earliest = self.earliest_locked(&inner);
        let head = self.head_seq();
        if from_seq < earliest {
            return Err(Error::invalid_argument(format!(
                "change history before seq {earliest} has been reclaimed \
                 (requested {from_seq}); resubscribe from {earliest} or later"
            )));
        }
        if from_seq > head + 1 {
            return Err(Error::invalid_argument(format!(
                "cannot subscribe from future seq {from_seq} (head is {head})"
            )));
        }
        let id = self.next_sub.fetch_add(1, Ordering::Relaxed);
        inner.subs.push(SubEntry {
            id,
            next_seq: from_seq,
        });
        drop(inner);
        Ok(ChangeCursor {
            log: self.clone(),
            id,
            next_seq: from_seq,
        })
    }

    /// Subscribe from the oldest available history.
    pub fn subscribe_oldest(self: &Arc<Self>) -> Result<ChangeCursor> {
        let from = self.earliest_seq();
        self.subscribe_from(from)
    }

    /// Subscribe from the next write (tail the stream).
    pub fn subscribe_tail(self: &Arc<Self>) -> Result<ChangeCursor> {
        self.subscribe_from(self.head_seq() + 1)
    }

    fn unsubscribe(&self, id: u64) {
        let mut inner = self.inner.lock();
        inner.subs.retain(|s| s.id != id);
        self.trim_locked(&mut inner);
    }

    /// Serve up to `max` events at or past the cursor. Events come
    /// back in strictly increasing, gap-free sequence order; an empty
    /// result means the subscriber is caught up (or history it needs
    /// is not yet visible — e.g. an unsynced live-WAL tail) and should
    /// poll again later.
    fn poll(&self, id: u64, cursor: SeqNo, max: usize) -> Result<Vec<ChangeEvent>> {
        if max == 0 {
            return Ok(Vec::new());
        }
        let head = self.head_seq();
        if cursor > head {
            return Ok(Vec::new());
        }
        let mut events: Vec<ChangeEvent> = Vec::new();
        let mut next = cursor;

        // Catch-up below the ring floor: replay retained WAL files.
        loop {
            let plan = {
                let inner = self.inner.lock();
                let ring_floor = inner.ring.front().map(|g| g.base);
                if ring_floor.is_some_and(|f| next >= f) {
                    None // servable from the ring
                } else {
                    self.plan_catchup_locked(&inner, next)
                }
            };
            let Some((path, end_seq)) = plan else { break };
            let served = self.replay_file(&path, &mut next, end_seq, head, max, &mut events);
            match served {
                Ok(true) => {
                    if events.len() >= max {
                        break;
                    }
                }
                // The file made no progress: either the history is not
                // yet visible (unsynced live-WAL tail) or the file
                // vanished in a rotation race. Serve what we have; the
                // next poll re-plans from the fresh catalog.
                Ok(false) | Err(_) => break,
            }
        }

        // Serve from the ring once the cursor reaches its floor.
        if events.len() < max && next <= head {
            let inner = self.inner.lock();
            if inner.ring.front().is_some_and(|g| next >= g.base) {
                for g in &inner.ring {
                    if g.last() < next {
                        continue;
                    }
                    for (i, e) in g.batch.entries().iter().enumerate() {
                        let seq = g.base + i as u64;
                        if seq < next || seq > head {
                            continue;
                        }
                        debug_assert_eq!(seq, next);
                        events.push(ChangeEvent {
                            seq,
                            vtype: e.vtype,
                            key: e.key.clone(),
                            value: e.value.clone(),
                            txn_id: g.txn_for(seq),
                        });
                        next = seq + 1;
                        if events.len() >= max {
                            break;
                        }
                    }
                    if events.len() >= max {
                        break;
                    }
                }
            }
        }

        if next != cursor {
            let mut inner = self.inner.lock();
            if let Some(sub) = inner.subs.iter_mut().find(|s| s.id == id) {
                sub.next_seq = next;
            }
            self.trim_locked(&mut inner);
        }
        Ok(events)
    }

    /// Pick the next catalog file that covers `next`, if catch-up is
    /// needed. Returns `(path, exclusive_end_seq)`.
    fn plan_catchup_locked(&self, inner: &LogInner, next: SeqNo) -> Option<(String, SeqNo)> {
        for s in &inner.segments {
            if s.end_seq > next {
                if s.first_seq > next {
                    // Hole below the oldest retained history: the
                    // subscriber was registered at/above `earliest`,
                    // so this only happens transiently; treat as
                    // nothing to serve.
                    return None;
                }
                return Some((wal_path(&self.dir, s.number), s.end_seq));
            }
        }
        let live = inner.live?;
        if live.first_seq <= next {
            return Some((wal_path(&self.dir, live.number), SeqNo::MAX));
        }
        None
    }

    /// Replay one WAL file, appending events in `[next, end_seq)` with
    /// `seq <= head`, up to `max` total. Returns whether the cursor
    /// advanced.
    fn replay_file(
        &self,
        path: &str,
        next: &mut SeqNo,
        end_seq: SeqNo,
        head: SeqNo,
        max: usize,
        events: &mut Vec<ChangeEvent>,
    ) -> Result<bool> {
        let data = self.env.read_file(path, IoClass::Wal)?;
        self.catchup_reads.fetch_add(1, Ordering::Relaxed);
        let (records, _corrupt) = crate::wal::read_all_records(data);
        let start = *next;
        for rec in records {
            let Ok((base, batch)) = WriteBatch::decode(&rec) else {
                break;
            };
            for (i, e) in batch.entries().iter().enumerate() {
                let seq = base + i as u64;
                if seq < *next {
                    continue;
                }
                if seq >= end_seq || seq > head {
                    return Ok(*next != start);
                }
                if seq != *next {
                    // A gap inside a file would mean lost history;
                    // stop rather than serve out of order.
                    return Ok(*next != start);
                }
                events.push(ChangeEvent {
                    seq,
                    vtype: e.vtype,
                    key: e.key.clone(),
                    value: e.value.clone(),
                    txn_id: None,
                });
                *next = seq + 1;
                if events.len() >= max {
                    return Ok(true);
                }
            }
        }
        Ok(*next != start)
    }

    /// Drop retained segments past the retention budget — but never a
    /// segment a registered subscriber still needs. Files dropped from
    /// the catalog become unprotected and are deleted by the engine's
    /// normal obsolete-WAL sweep.
    fn trim_locked(&self, inner: &mut LogInner) {
        let min_sub = inner.subs.iter().map(|s| s.next_seq).min();
        while inner.segment_bytes > self.retention {
            let Some(front) = inner.segments.front() else {
                break;
            };
            if min_sub.is_some_and(|m| m < front.end_seq) {
                break; // pinned by a live subscriber
            }
            let bytes = front.bytes;
            inner.segments.pop_front();
            inner.segment_bytes -= bytes;
        }
    }

    // ---------------- observability ----------------

    /// Counter/gauge snapshot.
    pub fn stats(&self) -> ChangeLogStats {
        let inner = self.inner.lock();
        let head = self.head_seq();
        let min_sub = inner.subs.iter().map(|s| s.next_seq).min();
        let lag = match min_sub {
            Some(m) if m <= head => head - m + 1,
            _ => 0,
        };
        ChangeLogStats {
            events_published: self.events_published.load(Ordering::Relaxed),
            subscribers: inner.subs.len() as u64,
            retained_wal_bytes: inner.segment_bytes,
            ring_bytes: inner.ring_bytes,
            catchup_reads: self.catchup_reads.load(Ordering::Relaxed),
            lag_seqs: lag,
        }
    }

    /// Bytes of on-disk history pinned for catch-up (retained WAL
    /// segments) — the CDC contribution to the §III-D pinned-bytes
    /// accounting.
    pub fn pinned_bytes(&self) -> u64 {
        self.inner.lock().segment_bytes
    }
}

/// A registered change subscriber: an RAII low-water mark. Dropping
/// the cursor unregisters it, releasing any WAL retention it pinned.
pub struct ChangeCursor {
    log: Arc<ChangeLog>,
    id: u64,
    next_seq: SeqNo,
}

impl ChangeCursor {
    /// Serve up to `max` events at the cursor, advancing it past
    /// everything returned. Events are strictly ordered and gap-free;
    /// an empty result means "caught up, poll again later".
    pub fn poll(&mut self, max: usize) -> Result<Vec<ChangeEvent>> {
        let events = self.log.poll(self.id, self.next_seq, max)?;
        if let Some(last) = events.last() {
            self.next_seq = last.seq + 1;
        }
        Ok(events)
    }

    /// The next sequence this cursor will deliver — the resume point.
    pub fn next_seq(&self) -> SeqNo {
        self.next_seq
    }

    /// Head minus cursor: how many committed events remain unseen.
    pub fn lag(&self) -> u64 {
        (self.log.head_seq() + 1).saturating_sub(self.next_seq)
    }
}

impl std::fmt::Debug for ChangeCursor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChangeCursor")
            .field("id", &self.id)
            .field("next_seq", &self.next_seq)
            .finish()
    }
}

impl Drop for ChangeCursor {
    fn drop(&mut self) {
        self.log.unsubscribe(self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::Lsm;
    use crate::options::LsmOptions;
    use scavenger_env::MemEnv;

    fn small_opts(env: EnvRef, dir: &str) -> LsmOptions {
        let mut o = LsmOptions::new(env, dir);
        o.memtable_size = 4 * 1024;
        o.base_level_bytes = 16 * 1024;
        o.target_file_size = 8 * 1024;
        o.block_size = 1024;
        o
    }

    fn put(db: &Lsm, k: &str, v: &[u8]) {
        let mut b = WriteBatch::new();
        b.put(k.as_bytes(), Bytes::copy_from_slice(v));
        db.write(b).unwrap();
    }

    /// Drain a cursor to the head, asserting strict gap-free ordering.
    fn drain(cur: &mut ChangeCursor) -> Vec<ChangeEvent> {
        let mut out: Vec<ChangeEvent> = Vec::new();
        loop {
            let batch = cur.poll(7).unwrap();
            if batch.is_empty() {
                break;
            }
            for e in batch {
                if let Some(prev) = out.last() {
                    assert_eq!(e.seq, prev.seq + 1, "gap or duplicate in stream");
                }
                out.push(e);
            }
        }
        out
    }

    #[test]
    fn tail_subscriber_sees_live_events_in_order() {
        let db = Lsm::open(small_opts(MemEnv::shared(), "db")).unwrap().0;
        let log = db.change_log();
        let mut cur = log.subscribe_tail().unwrap();
        assert!(cur.poll(16).unwrap().is_empty(), "nothing committed yet");

        let mut b = WriteBatch::new();
        b.put(b"a", Bytes::from_static(b"1"));
        b.delete(b"b");
        db.write(b).unwrap();
        put(&db, "c", b"3");

        let events = drain(&mut cur);
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].key, b"a");
        assert_eq!(events[0].vtype, ValueType::Value);
        assert_eq!(events[1].key, b"b");
        assert_eq!(events[1].vtype, ValueType::Deletion);
        assert_eq!(events[2].key, b"c");
        assert_eq!(events[2].seq, db.last_sequence());
        assert_eq!(cur.lag(), 0);
        assert!(cur.poll(16).unwrap().is_empty(), "caught up");

        let stats = log.stats();
        assert_eq!(stats.events_published, 3);
        assert_eq!(stats.subscribers, 1);
    }

    #[test]
    fn txn_marks_tag_only_their_member() {
        let db = Lsm::open(small_opts(MemEnv::shared(), "db")).unwrap().0;
        let log = db.change_log();
        let mut cur = log.subscribe_tail().unwrap();
        let mut b = WriteBatch::new();
        b.put(b"t", Bytes::from_static(b"v"));
        let wo = crate::batch::WriteOptions {
            txn_id: Some(42),
            ..Default::default()
        };
        db.write_opts(&wo, b).unwrap();
        put(&db, "plain", b"v");
        let events = drain(&mut cur);
        assert_eq!(events[0].txn_id, Some(42));
        assert_eq!(events[1].txn_id, None);
    }

    #[test]
    fn catchup_replays_wal_below_ring_floor() {
        let env = MemEnv::shared();
        let mut opts = small_opts(env, "db");
        opts.cdc_retention = 64 * 1024 * 1024;
        opts.cdc_ring_bytes = 1; // evict down to one group per publish
        let db = Lsm::open(opts).unwrap().0;
        // Enough volume to roll the memtable (and thus the WAL) several
        // times, so history spans closed segments + the live WAL.
        for i in 0..120 {
            put(&db, &format!("key{i:04}"), &[b'v'; 128]);
        }
        let log = db.change_log();
        assert_eq!(log.earliest_seq(), 1, "history retained from seq 1");

        let mut cur = log.subscribe_oldest().unwrap();
        let events = drain(&mut cur);
        assert_eq!(events.len(), 120);
        assert_eq!(events[0].seq, 1);
        assert_eq!(events[0].key, b"key0000");
        assert_eq!(events[119].key, b"key0119");
        assert!(log.stats().catchup_reads > 0, "served from WAL replay");
    }

    #[test]
    fn slow_subscriber_pins_history_with_zero_retention() {
        let env = MemEnv::shared();
        let opts = small_opts(env, "db"); // cdc_retention = 0
        let db = Lsm::open(opts).unwrap().0;
        put(&db, "first", b"v");
        let log = db.change_log();
        let mut cur = log.subscribe_from(1).unwrap();

        // Roll WALs: without the subscriber these files would be
        // reclaimed as soon as their memtables flush.
        for i in 0..120 {
            put(&db, &format!("key{i:04}"), &[b'v'; 128]);
        }
        assert!(
            log.pinned_bytes() > 0,
            "subscriber at seq 1 pins rotated WAL history"
        );

        let events = drain(&mut cur);
        assert_eq!(events.len(), 121, "full history despite retention = 0");
        assert_eq!(events[0].key, b"first");

        // Cursor caught up: retention 0 means the catalog drains, and
        // the sweep may now reclaim the files.
        assert_eq!(log.pinned_bytes(), 0);
        drop(cur);
        assert_eq!(log.stats().subscribers, 0);
    }

    #[test]
    fn reopen_recovers_retained_segments() {
        let env: EnvRef = MemEnv::shared();
        let mk = |env: &EnvRef| {
            let mut o = small_opts(env.clone(), "db");
            o.cdc_retention = 64 * 1024 * 1024;
            o
        };
        let total = {
            let db = Lsm::open(mk(&env)).unwrap().0;
            for i in 0..60 {
                put(&db, &format!("key{i:04}"), &[b'v'; 128]);
            }
            db.last_sequence()
        };
        let db = Lsm::open(mk(&env)).unwrap().0;
        let log = db.change_log();
        assert_eq!(log.earliest_seq(), 1, "recovered WALs re-catalogued");
        let mut cur = log.subscribe_oldest().unwrap();
        let events = drain(&mut cur);
        assert_eq!(events.len(), total as usize);
        assert_eq!(events[0].seq, 1);
        assert_eq!(events.last().unwrap().seq, total);
    }

    #[test]
    fn subscribe_outside_available_range_errors() {
        let mut opts = small_opts(MemEnv::shared(), "db");
        opts.cdc_ring_bytes = 1; // no ring history either
        let db = Lsm::open(opts).unwrap().0;
        // Retention 0: roll history away, then ask for it.
        for i in 0..120 {
            put(&db, &format!("key{i:04}"), &[b'v'; 128]);
        }
        let log = db.change_log();
        assert!(log.earliest_seq() > 1, "old history reclaimed");
        let err = log.subscribe_from(1).unwrap_err();
        assert!(err.to_string().contains("reclaimed"), "{err}");
        let head = log.head_seq();
        let err = log.subscribe_from(head + 2).unwrap_err();
        assert!(err.to_string().contains("future"), "{err}");
        // The two boundary cases that must succeed.
        log.subscribe_from(head + 1).unwrap();
        log.subscribe_oldest().unwrap();
    }
}
