//! Hooks connecting the index LSM-tree to the value store above it.
//!
//! The KV-separated engine (the `scavenger` crate) plugs into flush and
//! compaction through a [`ValueHook`]. For every output job the hook opens
//! a [`ValueSession`] which:
//!
//! * transforms entries about to be written (separating large values into
//!   value SSTs at flush, relocating blob values during compaction in
//!   BlobDB mode);
//! * observes every entry **dropped** by the merge — this is the paper's
//!   central coupling: a dropped `ValueRef` converts *hidden garbage* into
//!   *exposed garbage* (§II-D), and a dropped key is a hotness signal for
//!   the DropCache (§III-B3);
//! * returns a [`ValueEditBundle`] folded into the job's version edit, so
//!   value-store state changes commit atomically with the index change.

use bytes::Bytes;
use scavenger_util::ikey::{SeqNo, ValueType};
use scavenger_util::Result;
use std::sync::Arc;

/// Why the merge dropped an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropCause {
    /// A newer version of the same user key exists.
    Shadowed,
    /// A newer tombstone covers this entry.
    Tombstoned,
    /// A tombstone that reached the bottommost level with nothing beneath.
    ObsoleteTombstone,
}

/// What kind of output job a session serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Memtable flush (L0 table creation).
    Flush,
    /// Compaction into `output_level`.
    Compaction {
        /// Level the outputs are written to.
        output_level: usize,
        /// True if `output_level` is the bottommost populated level.
        bottommost: bool,
    },
}

/// A value file created by a session (registered in the version edit).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewValueFile {
    /// File number (allocated through [`FileNumAlloc`]).
    pub file: u64,
    /// On-disk size in bytes.
    pub size: u64,
    /// Number of records.
    pub entries: u64,
    /// Total value bytes stored.
    pub value_bytes: u64,
    /// True if this file holds hot-classified data (paper §III-B3).
    pub hot: bool,
    /// Format tag (mirrors `scavenger_table::props::TableType`).
    pub format: u8,
}

/// Value-store state changes produced by one job, committed atomically
/// with the index version edit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValueEditBundle {
    /// Value files created.
    pub new_files: Vec<NewValueFile>,
    /// Value files to delete.
    pub deleted_files: Vec<u64>,
    /// Inheritance edges `old → new` (TerarkDB-style GC, paper §II-B).
    pub inherits: Vec<(u64, u64)>,
    /// Exposed-garbage increments: `(file, bytes, entries)`.
    pub garbage: Vec<(u64, u64, u64)>,
}

impl ValueEditBundle {
    /// True if the bundle carries no changes.
    pub fn is_empty(&self) -> bool {
        self.new_files.is_empty()
            && self.deleted_files.is_empty()
            && self.inherits.is_empty()
            && self.garbage.is_empty()
    }

    /// Merge another bundle into this one.
    pub fn merge(&mut self, other: ValueEditBundle) {
        self.new_files.extend(other.new_files);
        self.deleted_files.extend(other.deleted_files);
        self.inherits.extend(other.inherits);
        self.garbage.extend(other.garbage);
    }
}

/// Allocates file numbers from the engine's global counter.
pub trait FileNumAlloc: Send + Sync {
    /// Return a fresh, unique file number.
    fn next_file_number(&self) -> u64;
}

/// Per-job session; see module docs.
pub trait ValueSession: Send {
    /// Transform an entry about to be written to the output table.
    /// Entries arrive in key order. Returns the `(type, value)` actually
    /// written to the key SST.
    fn entry(
        &mut self,
        user_key: &[u8],
        seq: SeqNo,
        vtype: ValueType,
        value: Bytes,
    ) -> Result<(ValueType, Bytes)>;

    /// Observe an entry dropped by the merge.
    fn drop_entry(
        &mut self,
        user_key: &[u8],
        seq: SeqNo,
        vtype: ValueType,
        value: &[u8],
        cause: DropCause,
    );

    /// Close any open value files and return the state changes.
    fn finish(self: Box<Self>) -> Result<ValueEditBundle>;
}

/// Factory for [`ValueSession`]s.
pub trait ValueHook: Send + Sync {
    /// Open a session for one flush/compaction job. `alloc` hands out
    /// engine-unique file numbers for any value files the session creates.
    fn session(&self, kind: JobKind, alloc: Arc<dyn FileNumAlloc>)
        -> Result<Box<dyn ValueSession>>;

    /// Called after a job's bundle has been durably committed to the
    /// manifest. The value store applies the bundle to its in-memory state
    /// and may delete now-unreferenced value files.
    fn on_committed(&self, bundle: &ValueEditBundle) {
        let _ = bundle;
    }
}

/// A session that writes entries through unchanged and reports nothing —
/// the behaviour of a vanilla (non-separated) LSM-tree.
pub struct PassthroughSession;

impl ValueSession for PassthroughSession {
    fn entry(
        &mut self,
        _user_key: &[u8],
        _seq: SeqNo,
        vtype: ValueType,
        value: Bytes,
    ) -> Result<(ValueType, Bytes)> {
        Ok((vtype, value))
    }

    fn drop_entry(
        &mut self,
        _user_key: &[u8],
        _seq: SeqNo,
        _vtype: ValueType,
        _value: &[u8],
        _cause: DropCause,
    ) {
    }

    fn finish(self: Box<Self>) -> Result<ValueEditBundle> {
        Ok(ValueEditBundle::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bundle_merge_concatenates() {
        let mut a = ValueEditBundle {
            new_files: vec![NewValueFile {
                file: 1,
                size: 10,
                entries: 1,
                value_bytes: 5,
                hot: false,
                format: 1,
            }],
            deleted_files: vec![2],
            inherits: vec![(2, 1)],
            garbage: vec![(3, 100, 1)],
        };
        let b = ValueEditBundle {
            new_files: vec![],
            deleted_files: vec![4],
            inherits: vec![],
            garbage: vec![(3, 50, 1)],
        };
        assert!(!a.is_empty());
        a.merge(b);
        assert_eq!(a.deleted_files, vec![2, 4]);
        assert_eq!(a.garbage.len(), 2);
    }

    #[test]
    fn passthrough_session_is_identity() {
        let mut s = PassthroughSession;
        let (t, v) = s
            .entry(b"k", 1, ValueType::Value, Bytes::from_static(b"v"))
            .unwrap();
        assert_eq!(t, ValueType::Value);
        assert_eq!(&v[..], b"v");
        let out = Box::new(s).finish().unwrap();
        assert!(out.is_empty());
    }
}
