//! Table cache: open key-SST readers, kept while their file is live.
//!
//! The reader type is detected from the file's properties block, so BTable
//! and DTable files can coexist in one tree (e.g. after switching formats
//! mid-life, or during ablation experiments).

use crate::filename::table_path;
use crate::options::LsmOptions;
use bytes::Bytes;
use parking_lot::Mutex;
use scavenger_env::{EnvRef, IoClass};
use scavenger_table::btable::{BTableReader, BlockCache};
use scavenger_table::cache::cache_file_id;
use scavenger_table::dtable::{DTableIter, DTableReader};
use scavenger_table::props::TableProps;
use scavenger_table::KeyCmp;
use scavenger_util::{Error, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// An open key SST of either format.
pub enum KTable {
    /// BlockBasedTable reader.
    B(BTableReader),
    /// IndexDecoupledTable reader.
    D(DTableReader),
}

impl KTable {
    /// Point lookup: first entry with internal key `>= target`.
    pub fn get(&self, target: &[u8]) -> Result<Option<(Vec<u8>, Bytes)>> {
        match self {
            KTable::B(t) => t.get(target),
            KTable::D(t) => t.get(target),
        }
    }

    /// Bloom check on a user key.
    pub fn may_contain(&self, ukey: &[u8]) -> bool {
        match self {
            KTable::B(t) => t.may_contain(ukey),
            KTable::D(t) => t.may_contain(ukey),
        }
    }

    /// Table properties.
    pub fn props(&self) -> &TableProps {
        match self {
            KTable::B(t) => t.props(),
            KTable::D(t) => t.props(),
        }
    }

    /// Iterate all entries in internal-key order.
    pub fn iter(&self) -> KTableIter {
        match self {
            KTable::B(t) => KTableIter::B(t.iter()),
            KTable::D(t) => KTableIter::D(t.iter()),
        }
    }
}

/// Iterator over a [`KTable`].
#[allow(clippy::large_enum_variant)]
pub enum KTableIter {
    /// BTable two-level iterator.
    B(scavenger_table::btable::BTableIter),
    /// DTable merged-stream iterator.
    D(DTableIter),
}

impl KTableIter {
    /// True if positioned on an entry.
    pub fn valid(&self) -> bool {
        match self {
            KTableIter::B(i) => i.valid(),
            KTableIter::D(i) => i.valid(),
        }
    }

    /// Position on the first entry.
    pub fn seek_to_first(&mut self) {
        match self {
            KTableIter::B(i) => i.seek_to_first(),
            KTableIter::D(i) => i.seek_to_first(),
        }
    }

    /// Position on the first entry `>= target`.
    pub fn seek(&mut self, target: &[u8]) {
        match self {
            KTableIter::B(i) => i.seek(target),
            KTableIter::D(i) => i.seek(target),
        }
    }

    /// Advance.
    pub fn next(&mut self) {
        match self {
            KTableIter::B(i) => i.next(),
            KTableIter::D(i) => i.next(),
        }
    }

    /// Current key.
    pub fn key(&self) -> &[u8] {
        match self {
            KTableIter::B(i) => i.key(),
            KTableIter::D(i) => i.key(),
        }
    }

    /// Current value.
    pub fn value(&self) -> Bytes {
        match self {
            KTableIter::B(i) => i.value(),
            KTableIter::D(i) => i.value(),
        }
    }

    /// Any error hit while iterating.
    pub fn status(&self) -> Result<()> {
        match self {
            KTableIter::B(i) => i.status(),
            KTableIter::D(i) => i.status(),
        }
    }
}

/// Open a key SST, dispatching on its on-disk table type. `cache_ns` is
/// the store's cache namespace (see
/// [`scavenger_table::cache::cache_file_id`]); pass `0` for a private
/// block cache.
pub fn open_ktable(
    env: &EnvRef,
    dir: &str,
    file_number: u64,
    cache_ns: u64,
    cache: Option<Arc<BlockCache>>,
    class: IoClass,
) -> Result<KTable> {
    let path = table_path(dir, file_number);
    let file = env.open_random_access(&path, class)?;
    let cache_id = cache_file_id(cache_ns, file_number);
    // Try DTable first: its open validates the table type cheaply.
    match DTableReader::open(file.clone(), cache_id, cache.clone()) {
        Ok(t) => Ok(KTable::D(t)),
        Err(Error::Corruption(msg)) if msg == "not a DTable file" => Ok(KTable::B(
            BTableReader::open(file, cache_id, cache, KeyCmp::Internal)?,
        )),
        Err(e) => Err(e),
    }
}

/// Number of independent reader-map shards. Mirrors the block cache's
/// sharding (16): concurrent readers — GC validation workers above all —
/// hash to different shards instead of serializing on one mutex.
const TABLE_CACHE_SHARDS: usize = 16;

/// Caches open readers keyed by file number, sharded by a mixed hash of
/// the file number so parallel lookups rarely contend.
pub struct TableCache {
    env: EnvRef,
    dir: String,
    block_cache: Arc<BlockCache>,
    cache_ns: u64,
    shards: Vec<Mutex<HashMap<u64, Arc<KTable>>>>,
}

impl TableCache {
    /// Create a table cache for `dir`.
    pub fn new(opts: &LsmOptions, block_cache: Arc<BlockCache>) -> Self {
        TableCache {
            env: opts.env.clone(),
            dir: opts.dir.clone(),
            block_cache,
            cache_ns: opts.cache_namespace,
            shards: (0..TABLE_CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    fn shard(&self, file_number: u64) -> &Mutex<HashMap<u64, Arc<KTable>>> {
        // File numbers are sequential; mix them so neighbours land in
        // different shards.
        let h = file_number.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        &self.shards[(h >> 32) as usize % self.shards.len()]
    }

    /// Get (or open) the reader for `file_number`. Reads are accounted as
    /// foreground index reads.
    pub fn get(&self, file_number: u64) -> Result<Arc<KTable>> {
        let shard = self.shard(file_number);
        if let Some(t) = shard.lock().get(&file_number) {
            return Ok(t.clone());
        }
        let table = Arc::new(open_ktable(
            &self.env,
            &self.dir,
            file_number,
            self.cache_ns,
            Some(self.block_cache.clone()),
            IoClass::FgIndexRead,
        )?);
        shard.lock().insert(file_number, table.clone());
        Ok(table)
    }

    /// Open a one-shot reader for `file_number` that bypasses both the
    /// reader cache and the block cache (`ReadOptions::fill_cache =
    /// false` reads must not pollute either).
    pub fn get_detached(&self, file_number: u64) -> Result<Arc<KTable>> {
        Ok(Arc::new(open_ktable(
            &self.env,
            &self.dir,
            file_number,
            self.cache_ns,
            None,
            IoClass::FgIndexRead,
        )?))
    }

    /// Drop the cached reader for a deleted file.
    pub fn evict(&self, file_number: u64) {
        self.shard(file_number).lock().remove(&file_number);
    }

    /// The shared block cache.
    pub fn block_cache(&self) -> Arc<BlockCache> {
        self.block_cache.clone()
    }

    /// Number of cached readers.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True if no readers are cached.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.lock().is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scavenger_env::MemEnv;
    use scavenger_table::btable::{BTableBuilder, TableOptions};
    use scavenger_table::dtable::DTableBuilder;
    use scavenger_util::ikey::{make_internal_key, ValueType};

    fn write_btable(env: &EnvRef, dir: &str, number: u64) {
        let f = env
            .new_writable(&table_path(dir, number), IoClass::Flush)
            .unwrap();
        let mut b = BTableBuilder::new(f, TableOptions::default());
        b.add(&make_internal_key(b"k1", 1, ValueType::Value), b"v1")
            .unwrap();
        b.finish().unwrap();
    }

    fn write_dtable(env: &EnvRef, dir: &str, number: u64) {
        let f = env
            .new_writable(&table_path(dir, number), IoClass::Flush)
            .unwrap();
        let mut b = DTableBuilder::new(f, TableOptions::default());
        b.add(&make_internal_key(b"k2", 1, ValueType::Value), b"v2")
            .unwrap();
        b.finish().unwrap();
    }

    #[test]
    fn detects_table_format_automatically() {
        let env: EnvRef = MemEnv::shared();
        write_btable(&env, "db", 1);
        write_dtable(&env, "db", 2);
        let t1 = open_ktable(&env, "db", 1, 0, None, IoClass::FgIndexRead).unwrap();
        let t2 = open_ktable(&env, "db", 2, 0, None, IoClass::FgIndexRead).unwrap();
        assert!(matches!(t1, KTable::B(_)));
        assert!(matches!(t2, KTable::D(_)));
        // Unified lookup API works across formats.
        let target = make_internal_key(b"k1", 100, ValueType::ValueRef);
        assert!(t1.get(&target).unwrap().is_some());
        let target = make_internal_key(b"k2", 100, ValueType::ValueRef);
        assert!(t2.get(&target).unwrap().is_some());
    }

    #[test]
    fn cache_returns_same_reader_and_evicts() {
        let env: EnvRef = MemEnv::shared();
        write_btable(&env, "db", 3);
        let opts = LsmOptions::new(env, "db");
        let tc = TableCache::new(&opts, Arc::new(BlockCache::with_capacity(1 << 20)));
        let a = tc.get(3).unwrap();
        let b = tc.get(3).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(tc.len(), 1);
        tc.evict(3);
        assert!(tc.is_empty());
    }

    #[test]
    fn missing_file_is_not_found() {
        let env: EnvRef = MemEnv::shared();
        let opts = LsmOptions::new(env, "db");
        let tc = TableCache::new(&opts, Arc::new(BlockCache::with_capacity(1 << 20)));
        assert!(tc.get(42).is_err());
    }

    #[test]
    fn unified_iter_walks_both_formats() {
        let env: EnvRef = MemEnv::shared();
        write_btable(&env, "db", 1);
        write_dtable(&env, "db", 2);
        for n in [1u64, 2] {
            let t = open_ktable(&env, "db", n, 0, None, IoClass::FgIndexRead).unwrap();
            let mut it = t.iter();
            it.seek_to_first();
            assert!(it.valid());
            it.next();
            assert!(!it.valid());
            it.status().unwrap();
        }
    }
}
