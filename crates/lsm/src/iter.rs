//! Internal iterators: memtable/vector iterators, per-level concatenation,
//! N-way merging, and the user-facing visibility iterator.

use crate::tcache::{KTableIter, TableCache};
use crate::version::FileMetaData;
use bytes::Bytes;
use scavenger_util::ikey::{
    cmp_internal, extract_user_key, make_internal_key, parse_internal_key, SeqNo, ValueType,
};
use scavenger_util::{Error, Result};
use std::cmp::Ordering;
use std::sync::Arc;

/// Common interface for iterators over `(internal key, value)` entries in
/// internal-key order.
pub trait InternalIterator: Send {
    /// True if positioned on an entry.
    fn valid(&self) -> bool;
    /// Position on the first entry.
    fn seek_to_first(&mut self);
    /// Position on the first entry `>= target` (internal-key order).
    fn seek(&mut self, target: &[u8]);
    /// Advance to the next entry.
    fn next(&mut self);
    /// Current internal key.
    fn key(&self) -> &[u8];
    /// Current value.
    fn value(&self) -> Bytes;
    /// Deferred error, if any.
    fn status(&self) -> Result<()>;
}

/// Iterator over an owned, sorted vector of entries (memtable snapshots).
pub struct VecIter {
    entries: Arc<Vec<(Vec<u8>, Bytes)>>,
    pos: usize,
}

impl VecIter {
    /// Wrap a sorted entry vector.
    pub fn new(entries: Vec<(Vec<u8>, Bytes)>) -> Self {
        VecIter {
            entries: Arc::new(entries),
            pos: usize::MAX,
        }
    }

    /// Wrap an already-shared sorted entry vector.
    pub fn from_shared(entries: Arc<Vec<(Vec<u8>, Bytes)>>) -> Self {
        VecIter {
            entries,
            pos: usize::MAX,
        }
    }
}

impl InternalIterator for VecIter {
    fn valid(&self) -> bool {
        self.pos < self.entries.len()
    }

    fn seek_to_first(&mut self) {
        self.pos = 0;
    }

    fn seek(&mut self, target: &[u8]) {
        self.pos = self
            .entries
            .partition_point(|(k, _)| cmp_internal(k, target) == Ordering::Less);
    }

    fn next(&mut self) {
        if self.valid() {
            self.pos += 1;
        }
    }

    fn key(&self) -> &[u8] {
        &self.entries[self.pos].0
    }

    fn value(&self) -> Bytes {
        self.entries[self.pos].1.clone()
    }

    fn status(&self) -> Result<()> {
        Ok(())
    }
}

/// Adapter: a [`KTableIter`] plus the `Arc` of its reader (kept alive).
pub struct TableEntryIter {
    _table: Arc<crate::tcache::KTable>,
    iter: KTableIter,
}

impl TableEntryIter {
    /// Create from a cached table reader.
    pub fn new(table: Arc<crate::tcache::KTable>) -> Self {
        let iter = table.iter();
        TableEntryIter {
            _table: table,
            iter,
        }
    }
}

impl InternalIterator for TableEntryIter {
    fn valid(&self) -> bool {
        self.iter.valid()
    }
    fn seek_to_first(&mut self) {
        self.iter.seek_to_first();
    }
    fn seek(&mut self, target: &[u8]) {
        self.iter.seek(target);
    }
    fn next(&mut self) {
        self.iter.next();
    }
    fn key(&self) -> &[u8] {
        self.iter.key()
    }
    fn value(&self) -> Bytes {
        self.iter.value()
    }
    fn status(&self) -> Result<()> {
        self.iter.status()
    }
}

/// Concatenating iterator over the (disjoint, sorted) files of one level.
pub struct LevelIter {
    files: Vec<Arc<FileMetaData>>,
    tcache: Arc<TableCache>,
    /// When `false`, files are opened detached (one-shot readers that
    /// bypass the reader and block caches — `fill_cache = false` scans).
    fill_cache: bool,
    file_idx: usize,
    cur: Option<TableEntryIter>,
    error: Option<Error>,
}

impl LevelIter {
    /// Iterate over `files`, which must be sorted by smallest key and
    /// non-overlapping (levels ≥ 1).
    pub fn new(files: Vec<Arc<FileMetaData>>, tcache: Arc<TableCache>) -> Self {
        Self::with_fill_cache(files, tcache, true)
    }

    /// Like [`new`](LevelIter::new), with explicit cache behaviour.
    pub fn with_fill_cache(
        files: Vec<Arc<FileMetaData>>,
        tcache: Arc<TableCache>,
        fill_cache: bool,
    ) -> Self {
        LevelIter {
            files,
            tcache,
            fill_cache,
            file_idx: 0,
            cur: None,
            error: None,
        }
    }

    fn open_file(&mut self, idx: usize) {
        self.cur = None;
        self.file_idx = idx;
        if idx >= self.files.len() {
            return;
        }
        let file_number = self.files[idx].file_number;
        let table = if self.fill_cache {
            self.tcache.get(file_number)
        } else {
            self.tcache.get_detached(file_number)
        };
        match table {
            Ok(t) => self.cur = Some(TableEntryIter::new(t)),
            Err(e) => self.error = Some(e),
        }
    }

    fn skip_exhausted(&mut self) {
        while self.error.is_none() {
            match &self.cur {
                Some(c) if c.valid() => return,
                _ => {
                    if self.file_idx + 1 >= self.files.len() {
                        self.cur = None;
                        return;
                    }
                    let next = self.file_idx + 1;
                    self.open_file(next);
                    if let Some(c) = self.cur.as_mut() {
                        c.seek_to_first();
                    }
                }
            }
        }
        self.cur = None;
    }
}

impl InternalIterator for LevelIter {
    fn valid(&self) -> bool {
        self.cur.as_ref().map(|c| c.valid()).unwrap_or(false)
    }

    fn seek_to_first(&mut self) {
        if self.files.is_empty() {
            self.cur = None;
            return;
        }
        self.open_file(0);
        if let Some(c) = self.cur.as_mut() {
            c.seek_to_first();
        }
        self.skip_exhausted();
    }

    fn seek(&mut self, target: &[u8]) {
        // Find the first file whose largest key is >= target.
        let idx = self
            .files
            .partition_point(|f| cmp_internal(&f.largest, target) == Ordering::Less);
        if idx >= self.files.len() {
            self.cur = None;
            self.file_idx = self.files.len();
            return;
        }
        self.open_file(idx);
        if let Some(c) = self.cur.as_mut() {
            c.seek(target);
        }
        self.skip_exhausted();
    }

    fn next(&mut self) {
        if let Some(c) = self.cur.as_mut() {
            c.next();
        }
        self.skip_exhausted();
    }

    fn key(&self) -> &[u8] {
        self.cur.as_ref().unwrap().key()
    }

    fn value(&self) -> Bytes {
        self.cur.as_ref().unwrap().value()
    }

    fn status(&self) -> Result<()> {
        if let Some(e) = &self.error {
            return Err(e.clone());
        }
        if let Some(c) = &self.cur {
            c.status()?;
        }
        Ok(())
    }
}

/// N-way merge of internal iterators. With the small fan-in of an LSM read
/// (memtables + L0 files + one iterator per level), a linear minimum scan
/// beats heap bookkeeping.
pub struct MergingIter {
    children: Vec<Box<dyn InternalIterator>>,
    current: Option<usize>,
}

impl MergingIter {
    /// Merge `children` (each yielding internal-key order).
    pub fn new(children: Vec<Box<dyn InternalIterator>>) -> Self {
        MergingIter {
            children,
            current: None,
        }
    }

    fn find_smallest(&mut self) {
        let mut best: Option<usize> = None;
        for (i, c) in self.children.iter().enumerate() {
            if !c.valid() {
                continue;
            }
            best = match best {
                None => Some(i),
                Some(b) => {
                    // Ties broken by child order: earlier children are
                    // newer sources (memtable before L0 before levels).
                    if cmp_internal(c.key(), self.children[b].key()) == Ordering::Less {
                        Some(i)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        self.current = best;
    }
}

impl InternalIterator for MergingIter {
    fn valid(&self) -> bool {
        self.current.is_some()
    }

    fn seek_to_first(&mut self) {
        for c in &mut self.children {
            c.seek_to_first();
        }
        self.find_smallest();
    }

    fn seek(&mut self, target: &[u8]) {
        for c in &mut self.children {
            c.seek(target);
        }
        self.find_smallest();
    }

    fn next(&mut self) {
        if let Some(i) = self.current {
            self.children[i].next();
            self.find_smallest();
        }
    }

    fn key(&self) -> &[u8] {
        self.children[self.current.unwrap()].key()
    }

    fn value(&self) -> Bytes {
        self.children[self.current.unwrap()].value()
    }

    fn status(&self) -> Result<()> {
        for c in &self.children {
            c.status()?;
        }
        Ok(())
    }
}

/// A user-visible entry produced by [`DbIter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UserEntry {
    /// The user key.
    pub user_key: Vec<u8>,
    /// Sequence of the visible version.
    pub seq: SeqNo,
    /// `Value` or `ValueRef` (tombstones are skipped).
    pub vtype: ValueType,
    /// Value payload (encoded [`scavenger_util::ikey::ValueRef`] for refs).
    pub value: Bytes,
}

/// Applies snapshot visibility and tombstone suppression over a merged
/// internal iterator, yielding at most one entry per user key.
pub struct DbIter {
    inner: MergingIter,
    read_seq: SeqNo,
}

impl DbIter {
    /// Wrap a merged iterator; only versions with `seq <= read_seq` are
    /// visible.
    pub fn new(inner: MergingIter, read_seq: SeqNo) -> Self {
        DbIter { inner, read_seq }
    }

    /// Position at the first visible entry with `user_key >= target`.
    pub fn seek(&mut self, target_user_key: &[u8]) {
        self.inner.seek(&make_internal_key(
            target_user_key,
            self.read_seq,
            ValueType::ValueRef,
        ));
    }

    /// Position at the first visible entry overall.
    pub fn seek_to_first(&mut self) {
        self.inner.seek_to_first();
    }

    /// Produce the next visible user entry, advancing past shadowed
    /// versions and tombstones.
    pub fn next_entry(&mut self) -> Result<Option<UserEntry>> {
        while self.inner.valid() {
            let parsed = parse_internal_key(self.inner.key())?;
            if parsed.seq > self.read_seq {
                // Not visible at this snapshot; try an older version.
                self.inner.next();
                continue;
            }
            let ukey = parsed.user_key.to_vec();
            let vtype = parsed.vtype;
            let seq = parsed.seq;
            let value = self.inner.value();
            // Skip all remaining (older) versions of this user key.
            self.skip_user_key(&ukey)?;
            match vtype {
                ValueType::Deletion => continue,
                t => {
                    return Ok(Some(UserEntry {
                        user_key: ukey,
                        seq,
                        vtype: t,
                        value,
                    }));
                }
            }
        }
        self.inner.status()?;
        Ok(None)
    }

    fn skip_user_key(&mut self, ukey: &[u8]) -> Result<()> {
        while self.inner.valid() {
            let parsed = parse_internal_key(self.inner.key())?;
            if parsed.user_key != ukey {
                break;
            }
            self.inner.next();
        }
        Ok(())
    }
}

/// Convenience: the user-key portion of the current merged position.
pub fn current_user_key(it: &dyn InternalIterator) -> &[u8] {
    extract_user_key(it.key())
}

/// Per-sweep iterator statistics, merged into the caller's GC counters.
#[derive(Debug, Default, Clone, Copy)]
pub struct SweepStats {
    /// Forward `next()` advances taken instead of re-seeks.
    pub steps: u64,
    /// Full merged re-seeks (every child repositioned).
    pub seeks: u64,
}

/// How many forward `next()` steps a sweep takes toward the next target
/// before falling back to a full merged seek. Small enough that sparse
/// batches degrade to seek cost, large enough that dense batches (the GC
/// validating a whole value file) walk the tree sequentially.
const SWEEP_STEP_LIMIT: usize = 16;

/// One co-sequential validation sweep over a merged view of the tree at a
/// fixed read point (paper Fig. 10: the *GC-Lookup* phase, batched).
///
/// Callers present user keys in **ascending order**; the sweep advances a
/// single pinned [`MergingIter`] forward, stepping when the next target is
/// near and seeking when it is far, so an entire batch is resolved with
/// one logical pass instead of one full point lookup per key.
pub struct BatchSweep {
    iter: MergingIter,
    read_seq: SeqNo,
    started: bool,
    stats: SweepStats,
    #[cfg(debug_assertions)]
    last_key: Vec<u8>,
}

impl BatchSweep {
    /// Wrap a merged iterator; visibility is capped at `read_seq`.
    pub fn new(children: Vec<Box<dyn InternalIterator>>, read_seq: SeqNo) -> Self {
        BatchSweep {
            iter: MergingIter::new(children),
            read_seq,
            started: false,
            stats: SweepStats::default(),
            #[cfg(debug_assertions)]
            last_key: Vec::new(),
        }
    }

    /// The visible version of `ukey` at this sweep's read point — the same
    /// answer as a point `get_at(ukey, read_seq)`, resolved forward-only.
    ///
    /// `ukey` must be `>=` every key previously passed to this sweep.
    pub fn next_visible(&mut self, ukey: &[u8]) -> Result<crate::db::LsmReadResult> {
        #[cfg(debug_assertions)]
        {
            debug_assert!(
                self.last_key.as_slice() <= ukey,
                "BatchSweep keys must be ascending"
            );
            self.last_key = ukey.to_vec();
        }
        let target = make_internal_key(ukey, self.read_seq, ValueType::ValueRef);
        if !self.started {
            self.iter.seek(&target);
            self.started = true;
            self.stats.seeks += 1;
        } else {
            let mut stepped = 0usize;
            loop {
                if !self.iter.valid() {
                    // Forward-only and exhausted: nothing at or after
                    // `target` exists in the pinned view.
                    break;
                }
                if cmp_internal(self.iter.key(), &target) != Ordering::Less {
                    break;
                }
                if stepped >= SWEEP_STEP_LIMIT {
                    self.iter.seek(&target);
                    self.stats.seeks += 1;
                    break;
                }
                self.iter.next();
                stepped += 1;
            }
            self.stats.steps += stepped as u64;
        }
        // An errored child reports !valid and the merge silently skips it,
        // which could surface a stale older version from another source as
        // the visible one. Propagate errors before trusting the position —
        // a GC acting on a stale verdict would delete live data.
        self.iter.status()?;
        if self.iter.valid() {
            let parsed = parse_internal_key(self.iter.key())?;
            if parsed.user_key == ukey {
                return Ok(match parsed.vtype {
                    ValueType::Deletion => crate::db::LsmReadResult::Deleted,
                    t => crate::db::LsmReadResult::Found {
                        seq: parsed.seq,
                        vtype: t,
                        value: self.iter.value(),
                    },
                });
            }
        }
        Ok(crate::db::LsmReadResult::NotFound)
    }

    /// Iterator statistics accumulated so far.
    pub fn stats(&self) -> SweepStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scavenger_util::ikey::make_internal_key;

    fn e(k: &str, seq: SeqNo, t: ValueType, v: &str) -> (Vec<u8>, Bytes) {
        (
            make_internal_key(k.as_bytes(), seq, t),
            Bytes::copy_from_slice(v.as_bytes()),
        )
    }

    #[test]
    fn vec_iter_seek_and_walk() {
        let entries = vec![
            e("a", 5, ValueType::Value, "va"),
            e("b", 9, ValueType::Value, "vb9"),
            e("b", 2, ValueType::Value, "vb2"),
            e("c", 1, ValueType::Value, "vc"),
        ];
        let mut it = VecIter::new(entries);
        it.seek_to_first();
        assert!(it.valid());
        assert_eq!(extract_user_key(it.key()), b"a");
        it.seek(&make_internal_key(b"b", 100, ValueType::ValueRef));
        assert_eq!(parse_internal_key(it.key()).unwrap().seq, 9);
        it.seek(&make_internal_key(b"b", 5, ValueType::ValueRef));
        assert_eq!(parse_internal_key(it.key()).unwrap().seq, 2);
        it.seek(&make_internal_key(b"zz", 1, ValueType::Value));
        assert!(!it.valid());
    }

    #[test]
    fn merging_iter_interleaves_and_orders_versions() {
        let newer = VecIter::new(vec![
            e("a", 10, ValueType::Value, "a10"),
            e("c", 12, ValueType::Value, "c12"),
        ]);
        let older = VecIter::new(vec![
            e("a", 3, ValueType::Value, "a3"),
            e("b", 4, ValueType::Value, "b4"),
        ]);
        let mut m = MergingIter::new(vec![Box::new(newer), Box::new(older)]);
        m.seek_to_first();
        let mut seen = Vec::new();
        while m.valid() {
            let p = parse_internal_key(m.key()).unwrap();
            seen.push((p.user_key.to_vec(), p.seq));
            m.next();
        }
        assert_eq!(
            seen,
            vec![
                (b"a".to_vec(), 10),
                (b"a".to_vec(), 3),
                (b"b".to_vec(), 4),
                (b"c".to_vec(), 12)
            ]
        );
    }

    #[test]
    fn db_iter_visibility_and_tombstones() {
        let data = VecIter::new(vec![
            e("a", 10, ValueType::Deletion, ""),
            e("a", 5, ValueType::Value, "a5"),
            e("b", 7, ValueType::Value, "b7"),
            e("c", 20, ValueType::Value, "c20"),
            e("c", 2, ValueType::Value, "c2"),
        ]);
        // Latest view: a deleted, b=b7, c=c20.
        let mut it = DbIter::new(MergingIter::new(vec![Box::new(data)]), 1000);
        it.seek_to_first();
        let x = it.next_entry().unwrap().unwrap();
        assert_eq!(x.user_key, b"b");
        assert_eq!(&x.value[..], b"b7");
        let x = it.next_entry().unwrap().unwrap();
        assert_eq!(x.user_key, b"c");
        assert_eq!(x.seq, 20);
        assert!(it.next_entry().unwrap().is_none());
    }

    #[test]
    fn db_iter_snapshot_reads_past() {
        let data = VecIter::new(vec![
            e("a", 10, ValueType::Deletion, ""),
            e("a", 5, ValueType::Value, "a5"),
            e("c", 20, ValueType::Value, "c20"),
            e("c", 2, ValueType::Value, "c2"),
        ]);
        // Snapshot at seq 6: tombstone a@10 invisible -> a5 visible; c2 visible.
        let mut it = DbIter::new(MergingIter::new(vec![Box::new(data)]), 6);
        it.seek_to_first();
        let x = it.next_entry().unwrap().unwrap();
        assert_eq!(x.user_key, b"a");
        assert_eq!(&x.value[..], b"a5");
        let x = it.next_entry().unwrap().unwrap();
        assert_eq!(x.user_key, b"c");
        assert_eq!(x.seq, 2);
        assert!(it.next_entry().unwrap().is_none());
    }

    #[test]
    fn db_iter_seek_bounds() {
        let data = VecIter::new(vec![
            e("apple", 1, ValueType::Value, "1"),
            e("banana", 2, ValueType::Value, "2"),
            e("cherry", 3, ValueType::Value, "3"),
        ]);
        let mut it = DbIter::new(MergingIter::new(vec![Box::new(data)]), 1000);
        it.seek(b"b");
        let x = it.next_entry().unwrap().unwrap();
        assert_eq!(x.user_key, b"banana");
    }

    #[test]
    fn ties_prefer_earlier_children() {
        // Same internal key in two children (shouldn't normally happen,
        // but newest-source-wins is the safe behaviour).
        let c1 = VecIter::new(vec![e("k", 5, ValueType::Value, "from-new")]);
        let c2 = VecIter::new(vec![e("k", 5, ValueType::Value, "from-old")]);
        let mut m = MergingIter::new(vec![Box::new(c1), Box::new(c2)]);
        m.seek_to_first();
        assert_eq!(&m.value()[..], b"from-new");
    }
}
