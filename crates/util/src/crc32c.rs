//! Software CRC-32C (Castagnoli polynomial, reflected), slice-by-4.
//!
//! Every persistent record in the engine — WAL fragments, table blocks,
//! manifest edits — carries a CRC-32C. We also apply LevelDB's *masking* to
//! checksums that are themselves stored inside checksummed payloads, so a
//! CRC of data containing an embedded CRC does not degenerate.

const POLY: u32 = 0x82f6_3b78; // reflected 0x1EDC6F41

/// 4 tables of 256 entries for slice-by-4 processing.
static TABLES: [[u32; 256]; 4] = build_tables();

const fn build_tables() -> [[u32; 256]; 4] {
    let mut t = [[0u32; 256]; 4];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            j += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 4 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

/// Extend a running CRC with `data`. Start from `0` for a fresh checksum.
pub fn extend(crc: u32, data: &[u8]) -> u32 {
    let mut crc = !crc;
    let mut chunks = data.chunks_exact(4);
    for c in &mut chunks {
        let word = u32::from_le_bytes(c.try_into().unwrap()) ^ crc;
        crc = TABLES[3][(word & 0xff) as usize]
            ^ TABLES[2][((word >> 8) & 0xff) as usize]
            ^ TABLES[1][((word >> 16) & 0xff) as usize]
            ^ TABLES[0][(word >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// CRC-32C of `data`.
pub fn value(data: &[u8]) -> u32 {
    extend(0, data)
}

const MASK_DELTA: u32 = 0xa282_ead8;

/// Mask a CRC so it is safe to store inside data that is itself
/// CRC-protected (LevelDB's trick: rotate and add a constant).
pub fn mask(crc: u32) -> u32 {
    crc.rotate_right(15).wrapping_add(MASK_DELTA)
}

/// Invert [`mask`].
pub fn unmask(masked: u32) -> u32 {
    masked.wrapping_sub(MASK_DELTA).rotate_left(15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // RFC 3720 / LevelDB test vectors.
        assert_eq!(value(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(value(&[0xffu8; 32]), 0x62a8_ab43);
        let inc: Vec<u8> = (0u8..32).collect();
        assert_eq!(value(&inc), 0x46dd_794e);
        let dec: Vec<u8> = (0u8..32).rev().collect();
        assert_eq!(value(&dec), 0x113f_db5c);
    }

    #[test]
    fn crc_of_abc() {
        assert_eq!(value(b"123456789"), 0xe306_9283);
    }

    #[test]
    fn extend_matches_whole() {
        let data = b"hello world, this is scavenger";
        for split in 0..data.len() {
            let (a, b) = data.split_at(split);
            assert_eq!(extend(extend(0, a), b), value(data));
        }
    }

    #[test]
    fn values_differ_by_content() {
        assert_ne!(value(b"a"), value(b"foo"));
        assert_ne!(value(b"foo"), value(b"bar"));
    }

    #[test]
    fn mask_roundtrip_and_differs() {
        let crc = value(b"foo");
        assert_ne!(mask(crc), crc);
        assert_ne!(mask(mask(crc)), crc);
        assert_eq!(unmask(mask(crc)), crc);
        assert_eq!(unmask(unmask(mask(mask(crc)))), crc);
    }
}
