//! Integer and length-prefixed-slice codecs shared by every on-disk format.
//!
//! The encodings are the LevelDB classics:
//!
//! * fixed-width little-endian `u32` / `u64`;
//! * LEB128-style varints (`u32` up to 5 bytes, `u64` up to 10 bytes);
//! * length-prefixed byte slices (`varint32 len ++ bytes`).
//!
//! Decoding functions take a `&mut &[u8]` cursor and advance it past the
//! consumed bytes, which keeps multi-field record parsers compact and makes
//! partial-input failures explicit [`Error::Corruption`] values instead of
//! panics.

use crate::error::{Error, Result};

/// Append a little-endian `u32`.
pub fn put_fixed32(dst: &mut Vec<u8>, v: u32) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_fixed64(dst: &mut Vec<u8>, v: u64) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Decode a little-endian `u32` from the front of `src`, advancing it.
pub fn get_fixed32(src: &mut &[u8]) -> Result<u32> {
    if src.len() < 4 {
        return Err(Error::corruption("truncated fixed32"));
    }
    let (head, tail) = src.split_at(4);
    *src = tail;
    Ok(u32::from_le_bytes(head.try_into().unwrap()))
}

/// Decode a little-endian `u64` from the front of `src`, advancing it.
pub fn get_fixed64(src: &mut &[u8]) -> Result<u64> {
    if src.len() < 8 {
        return Err(Error::corruption("truncated fixed64"));
    }
    let (head, tail) = src.split_at(8);
    *src = tail;
    Ok(u64::from_le_bytes(head.try_into().unwrap()))
}

/// Append a varint-encoded `u32` (1–5 bytes).
pub fn put_varint32(dst: &mut Vec<u8>, v: u32) {
    put_varint64(dst, v as u64);
}

/// Append a varint-encoded `u64` (1–10 bytes).
pub fn put_varint64(dst: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        dst.push((v as u8) | 0x80);
        v >>= 7;
    }
    dst.push(v as u8);
}

/// Decode a varint `u64` from the front of `src`, advancing it.
pub fn get_varint64(src: &mut &[u8]) -> Result<u64> {
    let mut result: u64 = 0;
    for (i, &byte) in src.iter().enumerate().take(10) {
        result |= u64::from(byte & 0x7f) << (7 * i);
        if byte & 0x80 == 0 {
            *src = &src[i + 1..];
            return Ok(result);
        }
    }
    Err(Error::corruption("malformed or truncated varint64"))
}

/// Decode a varint `u32` from the front of `src`, advancing it.
pub fn get_varint32(src: &mut &[u8]) -> Result<u32> {
    let v = get_varint64(src)?;
    u32::try_from(v).map_err(|_| Error::corruption("varint32 overflow"))
}

/// Number of bytes `put_varint64` would emit for `v`.
pub fn varint64_len(v: u64) -> usize {
    // 1 + floor(bits/7); bits==0 still takes one byte.
    let bits = 64 - v.max(1).leading_zeros() as usize;
    bits.div_ceil(7).max(1)
}

/// Append a varint length prefix followed by the slice bytes.
pub fn put_length_prefixed_slice(dst: &mut Vec<u8>, s: &[u8]) {
    put_varint32(dst, s.len() as u32);
    dst.extend_from_slice(s);
}

/// Decode a length-prefixed slice from the front of `src`, advancing it.
/// Returns a sub-slice borrowing from the original input.
pub fn get_length_prefixed_slice<'a>(src: &mut &'a [u8]) -> Result<&'a [u8]> {
    let len = get_varint32(src)? as usize;
    if src.len() < len {
        return Err(Error::corruption("truncated length-prefixed slice"));
    }
    let (head, tail) = src.split_at(len);
    *src = tail;
    Ok(head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fixed_roundtrip() {
        let mut buf = Vec::new();
        put_fixed32(&mut buf, 0xdead_beef);
        put_fixed64(&mut buf, 0x0123_4567_89ab_cdef);
        let mut s = buf.as_slice();
        assert_eq!(get_fixed32(&mut s).unwrap(), 0xdead_beef);
        assert_eq!(get_fixed64(&mut s).unwrap(), 0x0123_4567_89ab_cdef);
        assert!(s.is_empty());
    }

    #[test]
    fn varint_boundaries() {
        // Each 7-bit boundary changes the encoded length.
        for (v, len) in [
            (0u64, 1usize),
            (127, 1),
            (128, 2),
            (16383, 2),
            (16384, 3),
            (u64::from(u32::MAX), 5),
            (u64::MAX, 10),
        ] {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            assert_eq!(buf.len(), len, "value {v}");
            assert_eq!(varint64_len(v), len, "varint64_len for {v}");
            let mut s = buf.as_slice();
            assert_eq!(get_varint64(&mut s).unwrap(), v);
            assert!(s.is_empty());
        }
    }

    #[test]
    fn varint_truncated_is_corruption() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut s = &buf[..cut];
            assert!(get_varint64(&mut s).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn varint32_rejects_overflow() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::from(u32::MAX) + 1);
        let mut s = buf.as_slice();
        assert!(get_varint32(&mut s).is_err());
    }

    #[test]
    fn length_prefixed_slice_roundtrip() {
        let mut buf = Vec::new();
        put_length_prefixed_slice(&mut buf, b"hello");
        put_length_prefixed_slice(&mut buf, b"");
        put_length_prefixed_slice(&mut buf, &[0u8; 300]);
        let mut s = buf.as_slice();
        assert_eq!(get_length_prefixed_slice(&mut s).unwrap(), b"hello");
        assert_eq!(get_length_prefixed_slice(&mut s).unwrap(), b"");
        assert_eq!(get_length_prefixed_slice(&mut s).unwrap(), &[0u8; 300]);
        assert!(s.is_empty());
    }

    #[test]
    fn length_prefixed_slice_truncated_is_corruption() {
        let mut buf = Vec::new();
        put_length_prefixed_slice(&mut buf, b"hello");
        let mut s = &buf[..3];
        assert!(get_length_prefixed_slice(&mut s).is_err());
    }

    proptest! {
        #[test]
        fn prop_varint64_roundtrip(v: u64) {
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            prop_assert_eq!(buf.len(), varint64_len(v));
            let mut s = buf.as_slice();
            prop_assert_eq!(get_varint64(&mut s).unwrap(), v);
            prop_assert!(s.is_empty());
        }

        #[test]
        fn prop_varint_sequences_roundtrip(vals in proptest::collection::vec(any::<u64>(), 0..64)) {
            let mut buf = Vec::new();
            for &v in &vals {
                put_varint64(&mut buf, v);
            }
            let mut s = buf.as_slice();
            for &v in &vals {
                prop_assert_eq!(get_varint64(&mut s).unwrap(), v);
            }
            prop_assert!(s.is_empty());
        }

        #[test]
        fn prop_slices_roundtrip(slices in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..200), 0..16)) {
            let mut buf = Vec::new();
            for s in &slices {
                put_length_prefixed_slice(&mut buf, s);
            }
            let mut cur = buf.as_slice();
            for s in &slices {
                prop_assert_eq!(get_length_prefixed_slice(&mut cur).unwrap(), s.as_slice());
            }
            prop_assert!(cur.is_empty());
        }
    }
}
