//! Exponential-bucket histogram for latency / size distributions.
//!
//! Used by the GC instrumentation to reproduce the paper's Figure 3 latency
//! breakdown (average per-step latencies) and by the bench harness for
//! operation latency reporting. Buckets grow geometrically so the histogram
//! covers nanoseconds through seconds in 64 buckets with bounded error.

/// Number of buckets. Bucket `i` covers `[base^(i), base^(i+1))` roughly;
/// we use powers of two for cheap indexing via `leading_zeros`.
const NUM_BUCKETS: usize = 64;

/// A histogram over `u64` samples with power-of-two buckets.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(v: u64) -> usize {
        // 0 -> bucket 0, otherwise floor(log2(v)) + 1 capped at the top.
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Arithmetic mean, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate value at percentile `p` in `[0, 100]`, interpolated
    /// within the containing power-of-two bucket.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let threshold = (p.clamp(0.0, 100.0) / 100.0) * self.count as f64;
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cumulative + c;
            if next as f64 >= threshold {
                let lo = if i == 0 { 0u64 } else { 1u64 << (i - 1) };
                let hi = if i == 0 {
                    1u64
                } else {
                    (1u64 << i).saturating_sub(0)
                };
                let frac = if c == 0 {
                    0.0
                } else {
                    (threshold - cumulative as f64) / c as f64
                };
                return lo as f64 + frac * (hi - lo) as f64;
            }
            cumulative = next;
        }
        self.max as f64
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Reset to empty.
    pub fn clear(&mut self) {
        *self = Histogram::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(50.0), 0.0);
    }

    #[test]
    fn mean_min_max_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 60);
        assert_eq!(h.mean(), 20.0);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 30);
    }

    #[test]
    fn percentile_monotonic() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        // Power-of-two buckets: p50 of uniform 1..=1000 lies within a factor
        // of 2 of the true median.
        assert!((250.0..=1100.0).contains(&p50), "p50={p50}");
    }

    #[test]
    fn zero_samples_land_in_bucket_zero() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(500);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 500);
        assert_eq!(a.sum(), 505);
    }

    #[test]
    fn huge_values_do_not_overflow_bucket_index() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.count(), 1);
        assert_eq!(h.max(), u64::MAX);
    }
}
