//! Internal-key model and value-entry codec.
//!
//! The engine stores *internal keys*: `user_key ++ fixed64(seq << 8 | type)`.
//! Ordering is user-key ascending, then sequence number **descending**, then
//! type descending — so the freshest version of a key sorts first, exactly
//! like LevelDB/RocksDB.
//!
//! The value slot of an entry holds either the value bytes themselves
//! ([`ValueType::Value`]) or an encoded [`ValueRef`] pointing into the value
//! store ([`ValueType::ValueRef`]). Which of the two it is travels in the
//! internal key's type byte, so table builders (notably the DTable, which
//! physically separates the two classes) can route entries without decoding
//! the payload.

use crate::coding::{get_varint32, get_varint64, put_varint32, put_varint64};
use crate::error::{Error, Result};
use std::cmp::Ordering;

/// Sequence number (56 usable bits).
pub type SeqNo = u64;

/// Largest representable sequence number.
pub const MAX_SEQNO: SeqNo = (1 << 56) - 1;

/// Kind of an entry, stored in the low byte of the internal-key trailer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum ValueType {
    /// Tombstone: the key was deleted.
    Deletion = 0,
    /// The value bytes are stored inline in the index LSM-tree.
    Value = 1,
    /// The value lives in the value store; the payload is an encoded
    /// [`ValueRef`].
    ValueRef = 2,
}

impl ValueType {
    /// Parse a trailer type byte.
    pub fn from_u8(v: u8) -> Result<ValueType> {
        match v {
            0 => Ok(ValueType::Deletion),
            1 => Ok(ValueType::Value),
            2 => Ok(ValueType::ValueRef),
            other => Err(Error::corruption(format!("bad value type {other}"))),
        }
    }
}

/// Pack a `(seq, type)` pair into the 8-byte trailer.
pub fn pack_trailer(seq: SeqNo, t: ValueType) -> u64 {
    debug_assert!(seq <= MAX_SEQNO);
    (seq << 8) | t as u64
}

/// Append an internal key to `dst`.
pub fn append_internal_key(dst: &mut Vec<u8>, user_key: &[u8], seq: SeqNo, t: ValueType) {
    dst.extend_from_slice(user_key);
    dst.extend_from_slice(&pack_trailer(seq, t).to_le_bytes());
}

/// Build an internal key as an owned buffer.
pub fn make_internal_key(user_key: &[u8], seq: SeqNo, t: ValueType) -> Vec<u8> {
    let mut v = Vec::with_capacity(user_key.len() + 8);
    append_internal_key(&mut v, user_key, seq, t);
    v
}

/// A borrowed, decoded view of an internal key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedInternalKey<'a> {
    /// The application-visible key.
    pub user_key: &'a [u8],
    /// Sequence number of this version.
    pub seq: SeqNo,
    /// Entry kind.
    pub vtype: ValueType,
}

/// Parse an internal key, validating the trailer.
pub fn parse_internal_key(ikey: &[u8]) -> Result<ParsedInternalKey<'_>> {
    if ikey.len() < 8 {
        return Err(Error::corruption("internal key too short"));
    }
    let (user_key, trailer) = ikey.split_at(ikey.len() - 8);
    let t = u64::from_le_bytes(trailer.try_into().unwrap());
    Ok(ParsedInternalKey {
        user_key,
        seq: t >> 8,
        vtype: ValueType::from_u8((t & 0xff) as u8)?,
    })
}

/// Extract the user-key prefix of an internal key.
///
/// Panics in debug builds if the key is too short; in release it clamps,
/// because this sits on hot comparison paths.
pub fn extract_user_key(ikey: &[u8]) -> &[u8] {
    debug_assert!(ikey.len() >= 8, "internal key too short");
    &ikey[..ikey.len().saturating_sub(8)]
}

/// Extract the packed trailer of an internal key.
pub fn extract_trailer(ikey: &[u8]) -> u64 {
    debug_assert!(ikey.len() >= 8);
    let n = ikey.len();
    u64::from_le_bytes(ikey[n - 8..].try_into().unwrap())
}

/// Total order over encoded internal keys: user key ascending, then trailer
/// (seq, type) descending.
pub fn cmp_internal(a: &[u8], b: &[u8]) -> Ordering {
    match extract_user_key(a).cmp(extract_user_key(b)) {
        Ordering::Equal => extract_trailer(b).cmp(&extract_trailer(a)),
        ord => ord,
    }
}

/// A reference from the index LSM-tree into the value store.
///
/// * `file` — the value-SST (or blob-log) file number the value was written
///   to. TerarkDB/Scavenger modes resolve this through the inheritance
///   forest at read time, so it may name a long-deleted ancestor file.
/// * `size` — size in bytes of the value; used for compensated-size
///   compaction and garbage accounting without touching the value store.
/// * `offset` — byte offset within the file for address-based schemes
///   (BlobDB/Titan). Key-ordered vSST formats (BTable/RTable) locate the
///   record by key and leave this as the builder reported it (still useful
///   as a hint for sequential GC).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValueRef {
    /// Value-store file number.
    pub file: u64,
    /// Value size in bytes.
    pub size: u32,
    /// Byte offset of the record within the file (address-based modes).
    pub offset: u64,
}

impl ValueRef {
    /// Encode into a fresh buffer.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(16);
        self.encode_to(&mut v);
        v
    }

    /// Append the encoding to `dst`.
    pub fn encode_to(&self, dst: &mut Vec<u8>) {
        put_varint64(dst, self.file);
        put_varint32(dst, self.size);
        put_varint64(dst, self.offset);
    }

    /// Decode from a byte slice (must consume it exactly).
    pub fn decode(mut src: &[u8]) -> Result<ValueRef> {
        let file = get_varint64(&mut src)?;
        let size = get_varint32(&mut src)?;
        let offset = get_varint64(&mut src)?;
        if !src.is_empty() {
            return Err(Error::corruption("trailing bytes after ValueRef"));
        }
        Ok(ValueRef { file, size, offset })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn trailer_roundtrip() {
        let k = make_internal_key(b"abc", 42, ValueType::Value);
        let p = parse_internal_key(&k).unwrap();
        assert_eq!(p.user_key, b"abc");
        assert_eq!(p.seq, 42);
        assert_eq!(p.vtype, ValueType::Value);
        assert_eq!(extract_user_key(&k), b"abc");
    }

    #[test]
    fn ordering_user_key_ascending() {
        let a = make_internal_key(b"a", 5, ValueType::Value);
        let b = make_internal_key(b"b", 5, ValueType::Value);
        assert_eq!(cmp_internal(&a, &b), Ordering::Less);
    }

    #[test]
    fn ordering_seq_descending_within_key() {
        let newer = make_internal_key(b"k", 10, ValueType::Value);
        let older = make_internal_key(b"k", 3, ValueType::Value);
        assert_eq!(cmp_internal(&newer, &older), Ordering::Less);
    }

    #[test]
    fn ordering_type_descending_within_seq() {
        let vref = make_internal_key(b"k", 10, ValueType::ValueRef);
        let del = make_internal_key(b"k", 10, ValueType::Deletion);
        assert_eq!(cmp_internal(&vref, &del), Ordering::Less);
    }

    #[test]
    fn max_seqno_fits() {
        let k = make_internal_key(b"k", MAX_SEQNO, ValueType::Deletion);
        let p = parse_internal_key(&k).unwrap();
        assert_eq!(p.seq, MAX_SEQNO);
    }

    #[test]
    fn bad_type_is_corruption() {
        let mut k = make_internal_key(b"k", 1, ValueType::Value);
        let n = k.len();
        k[n - 8] = 99;
        assert!(parse_internal_key(&k).is_err());
    }

    #[test]
    fn value_ref_roundtrip() {
        let r = ValueRef {
            file: 123456,
            size: 16384,
            offset: 987654321,
        };
        assert_eq!(ValueRef::decode(&r.encode()).unwrap(), r);
    }

    #[test]
    fn value_ref_rejects_trailing_bytes() {
        let mut enc = ValueRef {
            file: 1,
            size: 2,
            offset: 3,
        }
        .encode();
        enc.push(0);
        assert!(ValueRef::decode(&enc).is_err());
    }

    proptest! {
        #[test]
        fn prop_internal_key_roundtrip(
            ukey in proptest::collection::vec(any::<u8>(), 0..64),
            seq in 0u64..MAX_SEQNO,
            t in prop_oneof![Just(ValueType::Deletion), Just(ValueType::Value), Just(ValueType::ValueRef)],
        ) {
            let k = make_internal_key(&ukey, seq, t);
            let p = parse_internal_key(&k).unwrap();
            prop_assert_eq!(p.user_key, ukey.as_slice());
            prop_assert_eq!(p.seq, seq);
            prop_assert_eq!(p.vtype, t);
        }

        #[test]
        fn prop_cmp_internal_is_total_order_consistent(
            k1 in proptest::collection::vec(any::<u8>(), 0..8),
            k2 in proptest::collection::vec(any::<u8>(), 0..8),
            s1 in 0u64..1000, s2 in 0u64..1000,
        ) {
            let a = make_internal_key(&k1, s1, ValueType::Value);
            let b = make_internal_key(&k2, s2, ValueType::Value);
            let ab = cmp_internal(&a, &b);
            let ba = cmp_internal(&b, &a);
            prop_assert_eq!(ab, ba.reverse());
            if k1 == k2 && s1 == s2 {
                prop_assert_eq!(ab, Ordering::Equal);
            }
        }

        #[test]
        fn prop_value_ref_roundtrip(file: u64, size: u32, offset: u64) {
            let r = ValueRef { file, size, offset };
            prop_assert_eq!(ValueRef::decode(&r.encode()).unwrap(), r);
        }
    }
}
