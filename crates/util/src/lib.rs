//! Shared utilities for the Scavenger key-value store.
//!
//! This crate provides the low-level building blocks every other crate in
//! the workspace relies on:
//!
//! * [`coding`] — varint / fixed-width integer encoding used by every
//!   on-disk format (blocks, WAL, manifest, footers).
//! * [`crc32c`] — software CRC-32C (Castagnoli), the checksum guarding all
//!   persistent records.
//! * [`ikey`] — the internal-key model: user keys combined with sequence
//!   numbers and value types, ordered user-key-ascending /
//!   sequence-descending exactly like LevelDB/RocksDB.
//! * [`hist`] — a fixed-bucket histogram used for GC latency breakdowns.
//! * [`error`] — the shared [`Error`] type.
//! * [`iter`] — the shared fuse-on-error adapter behind every
//!   user-facing scan iterator's `Iterator` impl.

pub mod coding;
pub mod crc32c;
pub mod error;
pub mod hist;
pub mod ikey;
pub mod iter;

pub use error::{Error, Result};
