//! Shared error type for the Scavenger workspace.

use std::fmt;

/// Result alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the storage engine.
///
/// The variants mirror the classic LevelDB status taxonomy: they are coarse
/// on purpose — callers branch on *category* (corruption vs. not-found vs.
/// environment failure), while the message carries the detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The requested key (or file) does not exist.
    NotFound(String),
    /// A persistent structure failed validation (bad CRC, truncated block,
    /// malformed varint, unknown magic number, ...).
    Corruption(String),
    /// The environment rejected an operation (missing file, I/O failure,
    /// injected fault, ...).
    Io(String),
    /// The caller asked for something the engine cannot do (bad options,
    /// misuse of an API).
    InvalidArgument(String),
    /// An internal invariant was violated. Seeing this is a bug.
    Internal(String),
    /// The engine is in read-only degraded mode after a permanent
    /// background failure: writes fail fast with this error while reads,
    /// scans, and pinned views keep working. `Db::resume()` clears it.
    ReadOnlyMode(String),
    /// An optimistic transaction failed commit-time validation: a key in
    /// its read set was overwritten after the transaction's read point.
    /// Nothing was written — the caller retries by re-running the
    /// transaction against current state.
    TxnConflict(String),
}

impl Error {
    /// Convenience constructor for [`Error::Corruption`].
    pub fn corruption(msg: impl Into<String>) -> Self {
        Error::Corruption(msg.into())
    }

    /// Convenience constructor for [`Error::Io`].
    pub fn io(msg: impl Into<String>) -> Self {
        Error::Io(msg.into())
    }

    /// Convenience constructor for [`Error::NotFound`].
    pub fn not_found(msg: impl Into<String>) -> Self {
        Error::NotFound(msg.into())
    }

    /// Convenience constructor for [`Error::InvalidArgument`].
    pub fn invalid_argument(msg: impl Into<String>) -> Self {
        Error::InvalidArgument(msg.into())
    }

    /// Convenience constructor for [`Error::Internal`].
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }

    /// Convenience constructor for [`Error::ReadOnlyMode`].
    pub fn read_only(msg: impl Into<String>) -> Self {
        Error::ReadOnlyMode(msg.into())
    }

    /// True if this error is [`Error::NotFound`].
    pub fn is_not_found(&self) -> bool {
        matches!(self, Error::NotFound(_))
    }

    /// True if this error is [`Error::ReadOnlyMode`].
    pub fn is_read_only(&self) -> bool {
        matches!(self, Error::ReadOnlyMode(_))
    }

    /// Convenience constructor for [`Error::TxnConflict`].
    pub fn txn_conflict(msg: impl Into<String>) -> Self {
        Error::TxnConflict(msg.into())
    }

    /// True if this error is [`Error::TxnConflict`].
    pub fn is_txn_conflict(&self) -> bool {
        matches!(self, Error::TxnConflict(_))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::Io(m) => write!(f, "io error: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
            Error::ReadOnlyMode(m) => write!(f, "read-only mode: {m}"),
            Error::TxnConflict(m) => write!(f, "transaction conflict: {m}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        if e.kind() == std::io::ErrorKind::NotFound {
            Error::NotFound(e.to_string())
        } else {
            Error::Io(e.to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_category_and_message() {
        assert_eq!(
            Error::corruption("bad crc").to_string(),
            "corruption: bad crc"
        );
        assert_eq!(Error::not_found("k1").to_string(), "not found: k1");
    }

    #[test]
    fn io_error_conversion_maps_not_found() {
        let e: Error = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.is_not_found());
        let e: Error = std::io::Error::new(std::io::ErrorKind::PermissionDenied, "nope").into();
        assert!(matches!(e, Error::Io(_)));
    }
}
