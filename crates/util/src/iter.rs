//! Shared iterator adapters.
//!
//! The engine's user-facing scan iterators all expose the same
//! `Iterator<Item = Result<T>>` contract: entries stream until
//! end-of-range, an error is yielded **once**, and after either
//! terminal event the iterator is *fused* — every later `next` returns
//! `None`. [`fuse`] declares that state machine in one place so the
//! per-layer iterators (engine, shard merge, LSM) cannot drift apart on
//! the contract.

use crate::Result;

/// One step of the shared fuse-on-error contract.
///
/// The caller's `Iterator::next` first short-circuits on its `done`
/// flag, then hands the freshly pulled three-way result here:
///
/// * `Ok(Some(e))` → `Some(Ok(e))` — stream continues;
/// * `Ok(None)` → sets `done`, returns `None` — end of range;
/// * `Err(e)` → sets `done`, returns `Some(Err(e))` — the error is
///   yielded exactly once, then the iterator is fused.
///
/// ```
/// use scavenger_util::iter::fuse;
/// use scavenger_util::{Error, Result};
///
/// struct Nums {
///     items: Vec<Result<Option<u32>>>,
///     done: bool,
/// }
/// impl Iterator for Nums {
///     type Item = Result<u32>;
///     fn next(&mut self) -> Option<Result<u32>> {
///         if self.done {
///             return None;
///         }
///         let pulled = self.items.remove(0);
///         fuse(&mut self.done, pulled)
///     }
/// }
///
/// let mut it = Nums {
///     items: vec![Ok(Some(1)), Err(Error::io("boom")), Ok(Some(2))],
///     done: false,
/// };
/// assert!(matches!(it.next(), Some(Ok(1))));
/// assert!(matches!(it.next(), Some(Err(_))));
/// assert!(it.next().is_none(), "fused after the error");
/// ```
pub fn fuse<T>(done: &mut bool, pulled: Result<Option<T>>) -> Option<Result<T>> {
    match pulled {
        Ok(Some(e)) => Some(Ok(e)),
        Ok(None) => {
            *done = true;
            None
        }
        Err(e) => {
            *done = true;
            Some(Err(e))
        }
    }
}
