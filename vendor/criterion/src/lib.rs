//! Minimal, offline-compatible subset of the `criterion` benchmark API.
//!
//! Measures wall-clock time per iteration (warmup + sampled batches,
//! reporting the mean and min), prints one line per benchmark, and —
//! when the `CRITERION_JSON` environment variable names a path — appends
//! every result as a JSON object so harnesses can record baselines.

use std::io::Write as _;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup (accepted for compatibility; this
/// shim always times the routine only).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct Record {
    /// `group/name` identifier.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest observed iteration, nanoseconds.
    pub min_ns: f64,
    /// Iterations measured.
    pub iters: u64,
    /// Throughput in MB/s (when annotated with [`Throughput::Bytes`]).
    pub mbps: Option<f64>,
}

static RESULTS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// Timing driver passed to benchmark closures.
pub struct Bencher<'a> {
    samples: Vec<Duration>,
    iters: u64,
    target: Duration,
    max_iters: u64,
    _marker: std::marker::PhantomData<&'a ()>,
}

impl Bencher<'_> {
    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup.
        black_box(routine());
        let budget = Instant::now();
        while budget.elapsed() < self.target && self.iters < self.max_iters {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            self.iters += 1;
        }
    }

    /// Time `routine` over inputs built by `setup`; only the routine is
    /// timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let budget = Instant::now();
        while budget.elapsed() < self.target && self.iters < self.max_iters {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            self.iters += 1;
        }
    }
}

fn run_one(
    id: &str,
    throughput: Option<Throughput>,
    sample_size: u64,
    f: impl FnOnce(&mut Bencher),
) {
    let mut b = Bencher {
        samples: Vec::new(),
        iters: 0,
        target: Duration::from_millis(300),
        max_iters: sample_size.max(5) * 20,
        _marker: std::marker::PhantomData,
    };
    f(&mut b);
    if b.samples.is_empty() {
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean_ns = total.as_nanos() as f64 / b.samples.len() as f64;
    let min_ns = b.samples.iter().min().unwrap().as_nanos() as f64;
    let mbps = match throughput {
        Some(Throughput::Bytes(n)) => Some(n as f64 / 1e6 / (mean_ns / 1e9)),
        _ => None,
    };
    let rec = Record {
        id: id.to_string(),
        mean_ns,
        min_ns,
        iters: b.iters,
        mbps,
    };
    match rec.mbps {
        Some(m) => println!(
            "bench {:<40} {:>12.0} ns/iter (min {:>10.0}) {:>10.1} MB/s  [{} iters]",
            rec.id, rec.mean_ns, rec.min_ns, m, rec.iters
        ),
        None => println!(
            "bench {:<40} {:>12.0} ns/iter (min {:>10.0})  [{} iters]",
            rec.id, rec.mean_ns, rec.min_ns, rec.iters
        ),
    }
    RESULTS.lock().unwrap().push(rec);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of samples to collect (upper bound in this shim).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, name.as_ref());
        run_one(&id, self.throughput, self.sample_size, f);
        self
    }

    /// Finish the group (no-op beyond dropping).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            throughput: None,
            sample_size: 50,
            _parent: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: impl AsRef<str>, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(name.as_ref(), None, 50, f);
        self
    }
}

/// Snapshot of all results measured so far.
pub fn all_results() -> Vec<Record> {
    RESULTS.lock().unwrap().clone()
}

/// If `CRITERION_JSON` is set, write all results there as a JSON array.
pub fn write_json_if_requested() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let results = all_results();
    let mut out = String::from("[\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"iters\": {}{}}}{}\n",
            r.id.replace('"', "'"),
            r.mean_ns,
            r.min_ns,
            r.iters,
            r.mbps
                .map(|m| format!(", \"mbps\": {m:.2}"))
                .unwrap_or_default(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
        Ok(()) => println!("criterion: wrote {} results to {path}", results.len()),
        Err(e) => eprintln!("criterion: failed to write {path}: {e}"),
    }
}

/// Define a benchmark group function running each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running each group then flushing JSON output.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
            $crate::write_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(10).throughput(Throughput::Bytes(1024));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        let ids: Vec<String> = all_results().into_iter().map(|r| r.id).collect();
        assert!(ids.contains(&"shim/noop".to_string()));
        assert!(ids.contains(&"shim/batched".to_string()));
    }
}
