//! Minimal, offline-compatible subset of the `rand` 0.8 API.
//!
//! Implements exactly what this workspace uses: `Rng::{gen, gen_range}`,
//! `SeedableRng::seed_from_u64`, and `rngs::StdRng` (xoshiro256++ seeded
//! through splitmix64 — a high-quality, fast generator; not the real
//! StdRng's ChaCha, which only matters cryptographically).

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Sample a uniformly random value.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample(rng: &mut dyn RngCore) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types usable with [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi]` (inclusive).
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi);
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // Modulo bias is < 2^-64 for the spans used here.
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_inclusive(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_single(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform + Dec> SampleRange<T> for Range<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_inclusive(rng, self.start, self.end.dec())
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Decrement helper for half-open integer ranges.
pub trait Dec {
    /// `self - 1` (never called on the minimum value).
    fn dec(self) -> Self;
}

macro_rules! impl_dec {
    ($($t:ty),*) => {$(
        impl Dec for $t {
            fn dec(self) -> Self { self - 1 }
        }
    )*};
}
impl_dec!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Dec for f64 {
    fn dec(self) -> Self {
        self
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform random value in `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Random bool with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Derive a full seed state from one `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::*;

    /// The standard generator: xoshiro256++ (deterministic, fast,
    /// excellent statistical quality).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            let mut sm = state;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias used by code expecting a cheap non-crypto generator.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: u64 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: usize = r.gen_range(5..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
