//! Minimal, offline-compatible subset of `parking_lot`, backed by
//! `std::sync` primitives.
//!
//! API differences from std that this shim reproduces:
//! * `lock()` / `read()` / `write()` return guards directly (no
//!   `Result`); poisoning is swallowed, matching parking_lot semantics.
//! * `Condvar::wait(&mut guard)` takes the guard by `&mut` instead of by
//!   value.

use std::sync::PoisonError;
use std::time::Duration;

/// A mutex that never poisons.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

/// Guard for [`Mutex`]. Holds an `Option` internally so [`Condvar::wait`]
/// can temporarily take ownership of the underlying std guard.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard active")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard active")
    }
}

/// A reader-writer lock that never poisons.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

/// Shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with [`Mutex`]/[`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Block until notified, releasing the guard while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard active");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard active");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            let r = cv.wait_for(&mut g, Duration::from_millis(50));
            let _ = r.timed_out();
        }
        t.join().unwrap();
        assert!(*g);
    }
}
