//! Minimal, offline-compatible subset of the `bytes` crate.
//!
//! Provides [`Bytes`]: a cheaply cloneable, sliceable, immutable byte
//! buffer backed by an `Arc<[u8]>`. Only the API surface this workspace
//! actually uses is implemented; semantics match the real crate for that
//! subset (`clone` and `slice` are O(1) and share the allocation).

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
            off: 0,
            len: 0,
        }
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// Wrap a static slice (copied here; the real crate borrows, but the
    /// copy is semantically indistinguishable for an immutable buffer).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// O(1) sub-slice sharing the same allocation.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len,
        };
        assert!(
            start <= end && end <= self.len,
            "slice out of bounds: {start}..{end} of {}",
            self.len
        );
        Bytes {
            data: self.data.clone(),
            off: self.off + start,
            len: end - start,
        }
    }

    /// View as a plain slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
            off: 0,
            len,
        }
    }
}

impl From<Box<[u8]>> for Bytes {
    fn from(v: Box<[u8]>) -> Bytes {
        let len = v.len();
        Bytes {
            data: Arc::from(v),
            off: 0,
            len,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice().iter().take(64) {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        if self.len > 64 {
            write!(f, "..")?;
        }
        write!(f, "\"")
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_and_bounds() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let t = s.slice(1..);
        assert_eq!(&t[..], &[3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn eq_and_default() {
        assert_eq!(Bytes::new(), Bytes::default());
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::from_static(b"abc"), Bytes::copy_from_slice(b"abc"));
    }
}
