//! Minimal, offline-compatible subset of the `proptest` API.
//!
//! Supports the strategy combinators and macros this workspace uses:
//! `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//! `any::<T>()`, `Just`, ranges, tuples, `prop_map`, and
//! `collection::{vec, btree_set}`. Cases are generated from a
//! deterministic per-test seed; there is no shrinking — a failing case
//! panics with the standard assertion message.

pub mod test_runner {
    /// Runner configuration (subset of the real `ProptestConfig`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for compatibility; this shim does not shrink.
        pub max_shrink_iters: u32,
        /// Accepted for compatibility; this shim never rejects inputs.
        pub max_global_rejects: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config {
                cases,
                ..Config::default()
            }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config {
                cases: 64,
                max_shrink_iters: 0,
                max_global_rejects: 0,
            }
        }
    }

    /// Deterministic per-test random source (splitmix64).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng {
                state: h ^ (case as u64).wrapping_mul(0x9e3779b97f4a7c15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            self.next_u64() % n
        }
    }
}

pub mod arbitrary {
    use super::test_runner::TestRng;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Produce one random value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod strategy {
    use super::arbitrary::Arbitrary;
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values (no shrinking in this shim).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy yielding a clone of a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128 - lo as u128 + 1) as u64;
                    lo + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($(($($n:ident $idx:tt),+)),+) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A 0),
        (A 0, B 1),
        (A 0, B 1, C 2),
        (A 0, B 1, C 2, D 3),
        (A 0, B 1, C 2, D 3, E 4)
    );

    /// One weighted arm of a [`OneOf`] union.
    pub type OneOfArm<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

    /// Weighted union built by `prop_oneof!`.
    pub struct OneOf<V> {
        arms: Vec<OneOfArm<V>>,
        total: u32,
    }

    impl<V> OneOf<V> {
        /// Build from `(weight, generator)` arms.
        pub fn new(arms: Vec<OneOfArm<V>>) -> OneOf<V> {
            let total = arms.iter().map(|(w, _)| *w).sum::<u32>().max(1);
            OneOf { arms, total }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total as u64) as u32;
            for (w, f) in &self.arms {
                if pick < *w {
                    return f(rng);
                }
                pick -= w;
            }
            (self.arms.last().expect("non-empty oneof").1)(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` of values from `element`, length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` with a target size in `size`.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `BTreeSet` of values from `element`. May yield fewer than the drawn
    /// size if the element strategy produces duplicates (like the real
    /// crate under duplicate pressure).
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = (self.size.start + rng.below(span) as usize).max(1);
            let mut out = BTreeSet::new();
            let mut tries = 0;
            while out.len() < n && tries < n * 10 {
                out.insert(self.element.generate(rng));
                tries += 1;
            }
            out
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`; see [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` values from `inner`, or `None` about a quarter of the
    /// time (the real crate's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Define property tests. Each `#[test] fn name(bindings) { body }` runs
/// `config.cases` times with fresh random bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = (<$crate::test_runner::Config as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            for __case in 0..__config.cases {
                let mut __proptest_rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $crate::__proptest_bind!(__proptest_rng; $($params)*);
                $body
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; mut $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        #[allow(unused_mut)]
        let mut $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $( $crate::__proptest_bind!($rng; $($rest)*); )?
    };
    ($rng:ident; $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $( $crate::__proptest_bind!($rng; $($rest)*); )?
    };
    ($rng:ident; $name:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $name = <$ty as $crate::arbitrary::Arbitrary>::arbitrary(&mut $rng);
        $( $crate::__proptest_bind!($rng; $($rest)*); )?
    };
}

/// Weighted (or unweighted) union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {{
        $crate::strategy::OneOf::new(::std::vec![
            $({
                let __s = $strat;
                (
                    $weight as u32,
                    ::std::boxed::Box::new(
                        move |__rng: &mut $crate::test_runner::TestRng| {
                            $crate::strategy::Strategy::generate(&__s, __rng)
                        },
                    ) as ::std::boxed::Box<
                        dyn Fn(&mut $crate::test_runner::TestRng) -> _,
                    >,
                )
            }),+
        ])
    }};
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

/// Assertion inside a property (no shrinking: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn typed_binding(v: u64) {
            let _ = v;
        }

        #[test]
        fn strategy_bindings(
            xs in crate::collection::vec(any::<u8>(), 0..16),
            n in 1usize..10,
            pair in (any::<u8>(), 5u16..9).prop_map(|(a, b)| (a, b)),
            choice in prop_oneof![2 => Just(1u8), 1 => Just(2u8)],
        ) {
            prop_assert!(xs.len() < 16);
            prop_assert!((1..10).contains(&n));
            prop_assert!((5..9).contains(&pair.1));
            prop_assert!(choice == 1u8 || choice == 2u8);
        }

        #[test]
        fn btree_set_sizes(
            mut s in crate::collection::btree_set(any::<u64>(), 1..20),
        ) {
            s.insert(0);
            prop_assert!(!s.is_empty() && s.len() <= 21);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(any::<u8>(), 0..32);
        let mut r1 = crate::test_runner::TestRng::for_case("x", 3);
        let mut r2 = crate::test_runner::TestRng::for_case("x", 3);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
