//! Hotness-aware writing in action (paper §III-B3).
//!
//! A small set of hot keys is overwritten constantly while a large cold
//! set sits untouched. The DropCache learns the hot keys from compaction
//! drops; flush and GC then route them into *hot* value SSTs. Watch the
//! garbage concentrate in hot files — which is what lets the
//! ratio-triggered GC reclaim a lot of space for very little I/O.
//!
//! Run with: `cargo run --release --example hot_cold_gc`

use scavenger::{EngineMode, IoClass, MemEnv, Options};
use scavenger_env::EnvRef;

fn main() -> scavenger::Result<()> {
    let env: EnvRef = MemEnv::shared();
    let db = Options::builder(env.clone(), "db", EngineMode::Scavenger)
        .memtable_size(64 * 1024)
        .base_level_bytes(256 * 1024)
        .auto_gc(false) // run GC by hand below so we can observe it
        .open()?;

    // 200 cold keys, written once.
    for i in 0..200 {
        db.put(format!("cold{i:04}"), vec![1u8; 4096])?;
    }
    // 10 hot keys, overwritten 40 times each.
    for round in 0..40 {
        for i in 0..10 {
            db.put(format!("hot{i:02}"), vec![round as u8; 4096])?;
        }
    }
    db.flush()?;
    db.compact_all()?;

    let detected = (0..10)
        .filter(|i| db.drop_cache().contains(format!("hot{i:02}").as_bytes()))
        .count();
    println!("DropCache learned {detected}/10 hot keys from compaction drops");

    println!("\n-- value files before GC --");
    let mut hot_garbage = 0.0;
    let mut cold_garbage = 0.0;
    let mut hot_n = 0;
    let mut cold_n = 0;
    for meta in db.value_store().all_files() {
        if meta.hot {
            hot_garbage += meta.garbage_ratio();
            hot_n += 1;
        } else {
            cold_garbage += meta.garbage_ratio();
            cold_n += 1;
        }
    }
    println!(
        "hot files : {hot_n:3}  avg garbage ratio {:.2}",
        if hot_n > 0 {
            hot_garbage / hot_n as f64
        } else {
            0.0
        }
    );
    println!(
        "cold files: {cold_n:3}  avg garbage ratio {:.2}",
        if cold_n > 0 {
            cold_garbage / cold_n as f64
        } else {
            0.0
        }
    );

    let before = env.io_stats().snapshot();
    let jobs = db.run_gc_until_clean()?;
    let d = env.io_stats().snapshot().delta(&before);
    println!("\n-- GC --");
    println!("jobs: {jobs}");
    println!(
        "GC read {} KiB / GC write {} KiB (lazy read skips garbage values)",
        d.class(IoClass::GcRead).read_bytes / 1024,
        d.class(IoClass::GcWrite).write_bytes / 1024
    );
    let stats = db.stats();
    println!(
        "space after GC: {} KiB total, {} KiB values",
        stats.space.total() / 1024,
        stats.space.value_bytes / 1024
    );

    // Correctness: everything still readable.
    for i in 0..200 {
        assert!(db.get(format!("cold{i:04}"))?.is_some());
    }
    for i in 0..10 {
        assert_eq!(db.get(format!("hot{i:02}"))?.unwrap()[0], 39);
    }
    println!("all keys verified after GC");
    Ok(())
}
