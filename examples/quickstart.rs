//! Quickstart: open a Scavenger database, write, read, scan, delete, and
//! inspect the space statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use scavenger::{Db, EngineMode, MemEnv, Options};

fn main() -> scavenger::Result<()> {
    // An in-memory environment keeps the example self-contained; swap in
    // `FsEnv::new("/tmp/scavenger-demo")?` for real files.
    let opts = Options::new(MemEnv::shared(), "quickstart-db", EngineMode::Scavenger);
    let db = Db::open(opts)?;

    // Small values stay inline in the index LSM-tree; values >= 512 B are
    // separated into value SSTs (RecordBasedTables).
    db.put("config:theme", &b"dark"[..])?;
    db.put("blob:avatar", vec![0xAB; 16 * 1024])?;

    let theme = db.get("config:theme")?.expect("present");
    println!("config:theme = {:?}", std::str::from_utf8(&theme).unwrap());
    let avatar = db.get("blob:avatar")?.expect("present");
    println!("blob:avatar  = {} bytes (separated)", avatar.len());

    // Overwrites create garbage in the value store; deletes write
    // tombstones.
    for version in 0..50 {
        db.put("blob:avatar", vec![version as u8; 16 * 1024])?;
    }
    db.delete("config:theme")?;
    assert!(db.get("config:theme")?.is_none());

    // Force the pipeline end-to-end: flush -> compaction (exposes
    // garbage) -> GC (reclaims it).
    db.flush()?;
    db.compact_all()?;
    let reclaimed = db.run_gc_until_clean()?;
    println!("garbage collection ran {reclaimed} job(s)");

    // Range scans resolve separated values transparently.
    let mut it = db.scan(b"blob:", None)?;
    while let Some(entry) = it.next_entry()? {
        println!(
            "scan: {} -> {} bytes",
            String::from_utf8_lossy(&entry.key),
            entry.value.len()
        );
    }

    let stats = db.stats();
    println!("\n-- space breakdown --");
    println!("key SSTs   : {} bytes", stats.space.ksst_bytes);
    println!("value files: {} bytes", stats.space.value_bytes);
    println!("WAL        : {} bytes", stats.space.wal_bytes);
    println!("index SA   : {:.3}", stats.index_space_amp);
    println!("exposed garbage: {} bytes", stats.exposed_garbage_bytes);
    Ok(())
}
