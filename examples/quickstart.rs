//! Quickstart: open a Scavenger database with the typed options
//! builder, write, read, scan, delete, take pinned views/snapshots,
//! and inspect the space statistics — then run the *same* generic code
//! against a sharded store, because both handles implement the unified
//! engine traits (`KvRead + KvWrite + Maintenance`).
//!
//! Run with: `cargo run --release --example quickstart`

use scavenger::{Engine, EngineMode, MemEnv, Options, ReadOptions, ShardedOptions, WriteOptions};

/// Written once against the trait surface; works on `Db`, `DbShards`,
/// and any future backend. The `Engine` bound is shorthand for
/// `KvRead + KvWrite + Maintenance`.
fn tour<E: Engine>(db: &E, label: &str) -> scavenger::Result<()> {
    println!("=== {label} ===");

    // Small values stay inline in the index LSM-tree; values >= 512 B
    // are separated into value SSTs (RecordBasedTables).
    db.put(b"config:theme", b"dark".to_vec().into())?;
    db.put(b"blob:avatar", vec![0xAB; 16 * 1024].into())?;

    let theme = db.get(b"config:theme")?.expect("present");
    println!("config:theme = {:?}", std::str::from_utf8(&theme).unwrap());
    let avatar = db.get(b"blob:avatar")?.expect("present");
    println!("blob:avatar  = {} bytes (separated)", avatar.len());

    // A snapshot is an RAII handle over a pinned read view: it keeps
    // reading this exact state until dropped, no matter what the engine
    // does underneath (writes, flushes, compactions, GC).
    let snapshot = db.snapshot();

    // Overwrites create garbage in the value store; deletes write
    // tombstones. Batched loads can skip the per-write WAL fsync.
    let bulk = WriteOptions {
        sync: false,
        ..WriteOptions::default()
    };
    for version in 0..50u8 {
        db.put_with(&bulk, b"blob:avatar", vec![version; 16 * 1024].into())?;
    }
    db.delete(b"config:theme")?;
    assert!(db.get(b"config:theme")?.is_none());

    // Force the pipeline end-to-end: flush -> compaction (exposes
    // garbage) -> GC (reclaims it). `run_gc` reports one outcome per
    // shard through the unified `GcReport` (a single engine fills one
    // slot), so this code never branches on the handle type.
    db.flush()?;
    db.compact_all()?;
    let jobs = db.run_gc_until_clean()?;
    let report = db.run_gc()?; // store is clean: nothing left to do
    assert!(!report.ran());
    println!("garbage collection ran {jobs} job(s)");

    // The snapshot still reads its epoch — strictly, with no retries:
    // the GC preserved every version the snapshot can see. (Pinned
    // surfaces implement the `PinnedReader` trait.)
    use scavenger::PinnedReader;
    let old_avatar = snapshot.get(b"blob:avatar")?.expect("pinned");
    assert_eq!(old_avatar[0], 0xAB, "snapshot reads the pre-update value");
    let old_theme = snapshot.get(b"config:theme")?.expect("pinned");
    println!(
        "snapshot still sees theme {:?} and the original avatar",
        std::str::from_utf8(&old_theme).unwrap()
    );
    drop(snapshot); // unregisters the read point

    // Per-call read options: a cold analytical scan that must not evict
    // the hot working set from the block cache. Scan iterators are real
    // `Iterator`s over `Result<ScanEntry>`.
    let cold_scan = ReadOptions {
        fill_cache: false,
        lower_bound: Some(b"blob:".to_vec()),
        ..ReadOptions::default()
    };
    for entry in db.scan_with(&cold_scan)? {
        let entry = entry?;
        println!(
            "cold scan: {} -> {} bytes",
            String::from_utf8_lossy(&entry.key),
            entry.value.len()
        );
    }

    let stats = db.stats();
    println!("-- space breakdown --");
    println!("key SSTs   : {} bytes", stats.space.ksst_bytes);
    println!("value files: {} bytes", stats.space.value_bytes);
    println!("WAL        : {} bytes", stats.space.wal_bytes);
    println!("index SA   : {:.3}", stats.index_space_amp);
    println!("exposed garbage: {} bytes\n", stats.exposed_garbage_bytes);
    Ok(())
}

fn main() -> scavenger::Result<()> {
    // An in-memory environment keeps the example self-contained; swap in
    // `FsEnv::new("/tmp/scavenger-demo")?` for real files. The typed
    // builder names every knob — no positional constructors.
    let single = Options::builder(MemEnv::shared(), "quickstart-db", EngineMode::Scavenger)
        .auto_gc(false) // the tour drives GC explicitly
        .open()?;
    tour(&single, "single engine (Db)")?;

    // Same tour, zero new code: a 4-shard store behind the same traits.
    let sharded =
        ShardedOptions::builder(MemEnv::shared(), "quickstart-shards", EngineMode::Scavenger)
            .num_shards(4)
            .auto_gc(false)
            .open()?;
    tour(&sharded, "sharded engine (DbShards, 4 shards)")?;
    Ok(())
}
