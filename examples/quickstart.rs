//! Quickstart: open a Scavenger database, write, read, scan, delete,
//! take pinned views/snapshots, and inspect the space statistics.
//!
//! Run with: `cargo run --release --example quickstart`

use scavenger::{Db, EngineMode, MemEnv, Options, ReadOptions, WriteOptions};

fn main() -> scavenger::Result<()> {
    // An in-memory environment keeps the example self-contained; swap in
    // `FsEnv::new("/tmp/scavenger-demo")?` for real files.
    let opts = Options::new(MemEnv::shared(), "quickstart-db", EngineMode::Scavenger);
    let db = Db::open(opts)?;

    // Small values stay inline in the index LSM-tree; values >= 512 B are
    // separated into value SSTs (RecordBasedTables).
    db.put("config:theme", &b"dark"[..])?;
    db.put("blob:avatar", vec![0xAB; 16 * 1024])?;

    let theme = db.get("config:theme")?.expect("present");
    println!("config:theme = {:?}", std::str::from_utf8(&theme).unwrap());
    let avatar = db.get("blob:avatar")?.expect("present");
    println!("blob:avatar  = {} bytes (separated)", avatar.len());

    // A snapshot is an RAII handle over a pinned read view: it keeps
    // reading this exact state until dropped, no matter what the engine
    // does underneath (writes, flushes, compactions, GC).
    let snapshot = db.snapshot();

    // Overwrites create garbage in the value store; deletes write
    // tombstones. Batched loads can skip the per-write WAL fsync.
    let bulk = WriteOptions {
        sync: false,
        ..WriteOptions::default()
    };
    for version in 0..50 {
        db.put_with(&bulk, "blob:avatar", vec![version as u8; 16 * 1024])?;
    }
    db.delete("config:theme")?;
    assert!(db.get("config:theme")?.is_none());

    // Force the pipeline end-to-end: flush -> compaction (exposes
    // garbage) -> GC (reclaims it).
    db.flush()?;
    db.compact_all()?;
    let reclaimed = db.run_gc_until_clean()?;
    println!("garbage collection ran {reclaimed} job(s)");

    // The snapshot still reads its epoch — strictly, with no retries:
    // the GC preserved every version the snapshot can see.
    let old_avatar = snapshot.get("blob:avatar")?.expect("pinned");
    assert_eq!(old_avatar[0], 0xAB, "snapshot reads the pre-update value");
    let old_theme = snapshot.get("config:theme")?.expect("pinned");
    println!(
        "snapshot still sees theme {:?} and the original avatar",
        std::str::from_utf8(&old_theme).unwrap()
    );
    drop(snapshot); // unregisters the read point

    // Per-call read options: a cold analytical scan that must not evict
    // the hot working set from the block cache.
    let cold_scan = ReadOptions {
        fill_cache: false,
        lower_bound: Some(b"blob:".to_vec()),
        ..ReadOptions::default()
    };
    let mut it = db.scan_with(&cold_scan)?;
    while let Some(entry) = it.next_entry()? {
        println!(
            "cold scan: {} -> {} bytes",
            String::from_utf8_lossy(&entry.key),
            entry.value.len()
        );
    }

    // Range scans resolve separated values transparently.
    let mut it = db.scan(b"blob:", None)?;
    while let Some(entry) = it.next_entry()? {
        println!(
            "scan: {} -> {} bytes",
            String::from_utf8_lossy(&entry.key),
            entry.value.len()
        );
    }

    let stats = db.stats();
    println!("\n-- space breakdown --");
    println!("key SSTs   : {} bytes", stats.space.ksst_bytes);
    println!("value files: {} bytes", stats.space.value_bytes);
    println!("WAL        : {} bytes", stats.space.wal_bytes);
    println!("index SA   : {:.3}", stats.index_space_amp);
    println!("exposed garbage: {} bytes", stats.exposed_garbage_bytes);
    Ok(())
}
