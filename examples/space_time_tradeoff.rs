//! The paper's core experiment in miniature: run the same update-heavy
//! workload against all five engine designs and print the space-time
//! trade-off each one lands on (paper Figures 2 and 14).
//!
//! Run with: `cargo run --release --example space_time_tradeoff`

use scavenger::{DeviceModel, EngineMode, MemEnv, Options};
use scavenger_env::EnvRef;

fn main() -> scavenger::Result<()> {
    let value_size = 8 * 1024; // the paper's Fixed-8K workload
    let num_keys = 400u64;
    let updates = 4 * num_keys;

    println!("Fixed-8K: load {num_keys} keys, apply {updates} hotspot updates\n");
    println!(
        "{:>10}  {:>12}  {:>10}  {:>10}  {:>10}",
        "engine", "sim MB/s", "space amp", "index SA", "gc runs"
    );

    for mode in EngineMode::ALL {
        let env: EnvRef = MemEnv::shared();
        let db = Options::builder(env.clone(), "db", mode)
            .memtable_size(64 * 1024)
            .base_level_bytes(256 * 1024)
            .open()?;

        // Load.
        for i in 0..num_keys {
            db.put(key(i), value(i, 0, value_size))?;
        }
        db.flush()?;

        // Update with a simple hotspot pattern (20% of keys get 80% of
        // updates), measuring I/O for the simulated-throughput figure.
        let before = env.io_stats().snapshot();
        let mut user_bytes = 0u64;
        for n in 0..updates {
            let i = if n % 5 == 0 {
                n % num_keys
            } else {
                n % (num_keys / 5)
            };
            db.put(key(i), value(i, n + 1, value_size))?;
            user_bytes += 24 + value_size as u64;
        }
        db.flush()?;
        let io = env.io_stats().snapshot().delta(&before);
        let secs = DeviceModel::nvme().simulated_seconds(&io);

        let stats = db.stats();
        let logical = num_keys * (24 + value_size as u64);
        println!(
            "{:>10}  {:>12.2}  {:>10.2}  {:>10.2}  {:>10}",
            mode.label(),
            user_bytes as f64 / 1e6 / secs,
            stats.space.total() as f64 / logical as f64,
            stats.index_space_amp,
            stats.gc.runs,
        );
    }
    println!("\nThe trade-off the paper closes: KV separation buys write speed");
    println!("but inflates space; Scavenger keeps the speed at near-vanilla SA.");
    Ok(())
}

fn key(i: u64) -> Vec<u8> {
    format!("user{i:020}").into_bytes()
}

fn value(i: u64, version: u64, size: usize) -> Vec<u8> {
    let mut v = vec![(i ^ version) as u8; size];
    v[..8].copy_from_slice(&version.to_le_bytes());
    v
}
