//! Sharded engine tour: open a 4-shard `DbShards`, watch keys route,
//! scan across shards in one global order, run per-shard GC through the
//! maintenance fan-out, and verify routing survives a reopen.
//!
//! Run with: `cargo run --release --example sharded`

use scavenger::{DbShards, EngineMode, EnvRef, MemEnv, ShardedOptions};

fn main() -> scavenger::Result<()> {
    let env: EnvRef = MemEnv::shared();
    // The typed builder covers the shard-layer knobs and every per-shard
    // engine knob in one chain; small files so the example generates
    // real flush/GC work.
    let opts = ShardedOptions::builder(env.clone(), "sharded-demo", EngineMode::Scavenger)
        .num_shards(4)
        .memtable_size(32 * 1024)
        .vsst_target_size(64 * 1024)
        .auto_gc(false)
        .build();

    let db = DbShards::open(opts.clone())?;
    println!(
        "opened {} shards (routing seed {:#x})\n",
        db.num_shards(),
        db.route_seed()
    );

    // Writes hash-route to one shard each; values >= 512 B separate into
    // that shard's value store.
    for user in 0..200 {
        db.put(format!("user:{user:04}"), vec![user as u8; 1024])?;
    }
    db.flush()?;

    println!("-- routing --");
    for user in [0, 1, 2, 3] {
        let key = format!("user:{user:04}");
        println!("{key} lives on shard {}", db.shard_of(&key));
    }
    let owned: Vec<usize> = (0..db.num_shards())
        .map(|s| {
            (0..200)
                .filter(|u| db.shard_of(format!("user:{u:04}")) == s)
                .count()
        })
        .collect();
    println!("keys per shard: {owned:?}\n");

    // A scan merges every shard's iterator into one global key order.
    let mut it = db.scan(b"user:0010", Some(b"user:0015"))?;
    println!("-- merged scan [user:0010, user:0015) --");
    while let Some(e) = it.next_entry()? {
        println!(
            "{} ({} bytes, shard {})",
            String::from_utf8_lossy(&e.key),
            e.value.len(),
            db.shard_of(&e.key)
        );
    }

    // Overwrite everything a few times: garbage lands on every shard.
    // One run_gc call fans per-shard GC jobs across the gc_threads pool.
    for round in 1..=3 {
        for user in 0..200 {
            db.put(format!("user:{user:04}"), vec![(user + round) as u8; 1024])?;
        }
        db.flush()?;
    }
    db.compact_all()?;
    let jobs = db.run_gc_until_clean()?;
    println!("\nGC ran {jobs} job(s) across shards");
    println!("-- per-shard stats --");
    for (i, s) in db.shard_stats().iter().enumerate() {
        println!(
            "shard {i}: {} GC runs, {} bytes reclaimed, {} flushes",
            s.gc.runs, s.gc.reclaimed_bytes, s.flushes
        );
    }
    // One more pass through the unified GcReport: outcomes are indexed
    // by shard, and the aggregate sums the whole set.
    let report = db.run_gc()?;
    println!(
        "follow-up run_gc: {} job(s), {} bytes reclaimed in aggregate",
        report.jobs(),
        report.aggregate().bytes_reclaimed
    );
    // Aggregate stats mirror Db::stats for the whole set.
    let agg = db.stats();
    println!(
        "aggregate: {} flushes, {} GC runs, cache hit ratio {:.2}",
        agg.flushes, agg.gc.runs, agg.cache_hit_ratio
    );
    let space = db.space();
    println!(
        "total space: {} bytes ({} key SSTs + {} value files)\n",
        space.total(),
        space.ksst_bytes,
        space.value_bytes
    );

    // Routing is persisted: a reopen (even with a different seed in the
    // options) loads the stored contract and every key finds its data.
    let placements: Vec<usize> = (0..200)
        .map(|u| db.shard_of(format!("user:{u:04}")))
        .collect();
    drop(db);
    let mut reopen = opts;
    reopen.route_seed = 0xffff; // ignored: the SHARDS meta file wins
    let db = DbShards::open(reopen)?;
    for (user, &placed) in placements.iter().enumerate() {
        let key = format!("user:{user:04}");
        assert_eq!(db.shard_of(&key), placed, "placement moved");
        let v = db.get(&key)?.expect("survives reopen");
        assert_eq!(v[0], (user + 3) as u8, "latest round visible");
    }
    println!("reopen: all 200 keys route to their original shards ✓");
    Ok(())
}
