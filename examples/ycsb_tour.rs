//! Run the six YCSB core workloads against a Scavenger database (paper
//! §IV-C) and report per-workload throughput — then replay workload A
//! on a sharded store through the *same* adapter, which is written once
//! against the unified engine traits.
//!
//! Run with: `cargo run --release --example ycsb_tour`

use scavenger::{
    EngineMode, KvRead, KvWrite, Maintenance, MemEnv, Options, ReadOptions, ShardedOptions,
    WriteOptions,
};
use scavenger_env::EnvRef;

// The workload crate drives any KvStore; examples implement the adapter
// inline to show the full integration surface. Written against the
// trait surface (`KvRead + KvWrite`), it serves a `Db`, a `DbShards`,
// or any future backend unchanged. Every operation routes through the
// explicit-options entry points: YCSB writes skip the per-write WAL
// fsync (the benchmark measures engine throughput, not fsync latency)
// and scans read through per-call options.
struct Adapter<'a, E>(&'a E, WriteOptions);

impl<'a, E: KvRead + KvWrite> Adapter<'a, E> {
    fn new(db: &'a E) -> Self {
        Adapter(
            db,
            WriteOptions {
                sync: false,
                ..WriteOptions::default()
            },
        )
    }
}

use scavenger_workload::runner::Runner;
use scavenger_workload::values::ValueGen;
use scavenger_workload::ycsb::YcsbWorkload;
use scavenger_workload::KvStore;

impl<E: KvRead + KvWrite> KvStore for Adapter<'_, E> {
    fn put(&self, key: &[u8], value: &[u8]) -> scavenger::Result<()> {
        self.0
            .put_with(&self.1, key, value.to_vec().into())
            .map(|_| ())
    }
    fn get(&self, key: &[u8]) -> scavenger::Result<Option<Vec<u8>>> {
        Ok(self.0.get(key)?.map(|b| b.to_vec()))
    }
    fn delete(&self, key: &[u8]) -> scavenger::Result<()> {
        self.0.delete_with(&self.1, key).map(|_| ())
    }
    fn scan(&self, start: &[u8], limit: usize) -> scavenger::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let opts = ReadOptions {
            lower_bound: Some(start.to_vec()),
            ..ReadOptions::default()
        };
        // Scan iterators are plain `Iterator`s over Result<ScanEntry>.
        self.0
            .scan_with(&opts)?
            .take(limit)
            .map(|e| e.map(|e| (e.key, e.value.to_vec())))
            .collect()
    }
}

/// The whole tour, generic over the engine: load, run A–F, report.
fn run_tour<E: KvRead + KvWrite + Maintenance>(db: &E, n: u64) -> scavenger::Result<()> {
    let store = Adapter::new(db);
    let mut runner = Runner::new(n * 2, ValueGen::mixed_8k(), 7).with_verification();
    println!("loading {n} keys (Mixed-8K values)...");
    runner.load(&store, n)?;
    db.flush()?;

    println!(
        "\n{:>9}  {:>8}  {:>12}  {:>13}",
        "workload", "ops", "wall ops/s", "notes"
    );
    for w in YcsbWorkload::ALL {
        let rep = runner.ycsb(&store, w, 0.99, 2_000, 50)?;
        let notes = match w {
            YcsbWorkload::A => "50r/50u zipf",
            YcsbWorkload::B => "95r/5u zipf",
            YcsbWorkload::C => "100r zipf",
            YcsbWorkload::D => "95r/5i latest",
            YcsbWorkload::E => "95scan/5i",
            YcsbWorkload::F => "50r/50rmw",
        };
        println!(
            "{:>9}  {:>8}  {:>12.0}  {:>13}",
            w.label(),
            rep.ops,
            rep.ops as f64 / rep.wall_secs.max(1e-9),
            notes
        );
    }

    let stats = db.stats();
    println!(
        "\nfinal space: {} KiB across {} value files (index SA {:.2})",
        stats.space.total() / 1024,
        stats.value_files,
        stats.index_space_amp
    );
    Ok(())
}

fn main() -> scavenger::Result<()> {
    let env: EnvRef = MemEnv::shared();
    let db = Options::builder(env, "db", EngineMode::Scavenger)
        .memtable_size(128 * 1024)
        .base_level_bytes(512 * 1024)
        .open()?;
    println!("=== single engine (Db) ===");
    run_tour(&db, 1_000)?;

    // Identical adapter + tour on a sharded store: the trait surface is
    // the whole integration contract.
    let sharded = ShardedOptions::builder(MemEnv::shared(), "db-shards", EngineMode::Scavenger)
        .num_shards(4)
        .memtable_size(128 * 1024)
        .base_level_bytes(512 * 1024)
        .open()?;
    println!("\n=== sharded engine (DbShards, 4 shards) ===");
    run_tour(&sharded, 1_000)?;
    Ok(())
}
