//! Run the six YCSB core workloads against a Scavenger database (paper
//! §IV-C) and report per-workload throughput.
//!
//! Run with: `cargo run --release --example ycsb_tour`

use scavenger::{Db, EngineMode, MemEnv, Options, ReadOptions, WriteOptions};
use scavenger_env::EnvRef;

// The workload crate drives any KvStore; examples implement the adapter
// inline to show the full integration surface. This adapter routes every
// operation through the explicit-options entry points: YCSB writes skip
// the per-write WAL fsync (the benchmark measures engine throughput, not
// fsync latency) and scans read through per-call options.
struct Adapter<'a>(&'a Db, WriteOptions);

impl<'a> Adapter<'a> {
    fn new(db: &'a Db) -> Self {
        Adapter(
            db,
            WriteOptions {
                sync: false,
                ..WriteOptions::default()
            },
        )
    }
}

use scavenger_workload::runner::Runner;
use scavenger_workload::values::ValueGen;
use scavenger_workload::ycsb::YcsbWorkload;
use scavenger_workload::KvStore;

impl KvStore for Adapter<'_> {
    fn put(&self, key: &[u8], value: &[u8]) -> scavenger::Result<()> {
        self.0.put_with(&self.1, key, value.to_vec())
    }
    fn get(&self, key: &[u8]) -> scavenger::Result<Option<Vec<u8>>> {
        Ok(self.0.get(key)?.map(|b| b.to_vec()))
    }
    fn delete(&self, key: &[u8]) -> scavenger::Result<()> {
        self.0.delete_with(&self.1, key)
    }
    fn scan(&self, start: &[u8], limit: usize) -> scavenger::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let opts = ReadOptions {
            lower_bound: Some(start.to_vec()),
            ..ReadOptions::default()
        };
        let mut it = self.0.scan_with(&opts)?;
        Ok(it
            .collect_n(limit)?
            .into_iter()
            .map(|e| (e.key, e.value.to_vec()))
            .collect())
    }
}

fn main() -> scavenger::Result<()> {
    let env: EnvRef = MemEnv::shared();
    let mut opts = Options::new(env, "db", EngineMode::Scavenger);
    opts.memtable_size = 128 * 1024;
    opts.base_level_bytes = 512 * 1024;
    let db = Db::open(opts)?;
    let store = Adapter::new(&db);

    let n = 1_000u64;
    let mut runner = Runner::new(n * 2, ValueGen::mixed_8k(), 7).with_verification();
    println!("loading {n} keys (Mixed-8K values)...");
    runner.load(&store, n)?;
    db.flush()?;

    println!(
        "\n{:>9}  {:>8}  {:>12}  {:>13}",
        "workload", "ops", "wall ops/s", "notes"
    );
    for w in YcsbWorkload::ALL {
        let rep = runner.ycsb(&store, w, 0.99, 2_000, 50)?;
        let notes = match w {
            YcsbWorkload::A => "50r/50u zipf",
            YcsbWorkload::B => "95r/5u zipf",
            YcsbWorkload::C => "100r zipf",
            YcsbWorkload::D => "95r/5i latest",
            YcsbWorkload::E => "95scan/5i",
            YcsbWorkload::F => "50r/50rmw",
        };
        println!(
            "{:>9}  {:>8}  {:>12.0}  {:>13}",
            w.label(),
            rep.ops,
            rep.ops as f64 / rep.wall_secs.max(1e-9),
            notes
        );
    }

    let stats = db.stats();
    println!(
        "\nfinal space: {} KiB across {} value files (index SA {:.2})",
        stats.space.total() / 1024,
        stats.value_files,
        stats.index_space_amp
    );
    Ok(())
}
