//! Workspace umbrella crate.
//!
//! Exists so the repository-level `tests/` and `examples/` directories
//! have a package to attach to; re-exports the public engine crate.

pub use scavenger::*;
