//! Workspace umbrella crate.
//!
//! Exists so the repository-level `tests/` and `examples/` directories
//! have a package to attach to; re-exports the public engine crate —
//! including the unified trait surface ([`KvRead`] / [`KvWrite`] /
//! [`Maintenance`], umbrella [`Engine`]) that both [`Db`] and
//! [`DbShards`] implement. Start with the repo-root `README.md` (crate
//! map, quickstart) and `ARCHITECTURE.md` (API layer, read path, GC
//! pipeline, throttling, shard layer).

pub use scavenger::*;
