//! Space-accounting invariants: garbage bookkeeping, GC reclamation,
//! space-aware throttling, and the paper's space-amplification metrics.

use scavenger::{Db, EngineMode, MemEnv, Options};
use scavenger_env::EnvRef;

fn opts(env: EnvRef, mode: EngineMode) -> Options {
    let mut o = Options::new(env, "db", mode);
    o.memtable_size = 32 * 1024;
    o.base_level_bytes = 128 * 1024;
    o.vsst_target_size = 128 * 1024;
    o
}

fn churn(db: &Db, keys: u64, rounds: u64, vsize: usize) {
    for r in 0..rounds {
        for i in 0..keys {
            db.put(format!("k{i:04}"), vec![(r + i) as u8; vsize])
                .unwrap();
        }
        db.flush().unwrap();
    }
}

#[test]
fn exposed_garbage_never_exceeds_store_bytes() {
    for mode in [EngineMode::Scavenger, EngineMode::Terark, EngineMode::Titan] {
        let env: EnvRef = MemEnv::shared();
        let mut o = opts(env, mode);
        o.auto_gc = false;
        let db = Db::open(o).unwrap();
        churn(&db, 150, 4, 3000);
        db.compact_all().unwrap();
        let s = db.stats();
        assert!(s.exposed_garbage_bytes > 0, "{mode:?}");
        assert!(
            s.exposed_garbage_bytes <= s.value_store_bytes,
            "{mode:?}: exposed {} > store {}",
            s.exposed_garbage_bytes,
            s.value_store_bytes
        );
    }
}

#[test]
fn gc_reduces_exposed_garbage_and_space() {
    for mode in [EngineMode::Scavenger, EngineMode::Terark] {
        let env: EnvRef = MemEnv::shared();
        let mut o = opts(env, mode);
        o.auto_gc = false;
        let db = Db::open(o).unwrap();
        churn(&db, 150, 5, 3000);
        db.compact_all().unwrap();
        let before = db.stats();
        db.run_gc_until_clean().unwrap();
        let after = db.stats();
        assert!(
            after.exposed_garbage_bytes < before.exposed_garbage_bytes,
            "{mode:?}: exposed garbage must shrink"
        );
        assert!(
            after.space.value_bytes < before.space.value_bytes,
            "{mode:?}: value store must shrink"
        );
        // After GC at threshold 0.2, no live file should exceed ~the
        // threshold by much.
        for meta in db.value_store().all_files() {
            assert!(
                meta.garbage_ratio() < 0.5,
                "{mode:?}: file {} ratio {}",
                meta.file,
                meta.garbage_ratio()
            );
        }
    }
}

#[test]
fn space_amp_converges_near_gc_threshold_with_unpaced_gc() {
    // With unlimited GC bandwidth the steady-state exposed-garbage ratio
    // should approach the paper's ideal 1/(1-0.2) = 1.25 for the value
    // store.
    let env: EnvRef = MemEnv::shared();
    let mut o = opts(env, EngineMode::Scavenger);
    o.gc_bandwidth_factor = 1e9;
    let db = Db::open(o).unwrap();
    churn(&db, 200, 6, 3000);
    let logical_values = 200 * 3000u64;
    let s = db.stats();
    let value_amp = s.space.value_bytes as f64 / logical_values as f64;
    assert!(
        value_amp < 1.8,
        "value-store amplification {value_amp} should be near 1.25"
    );
}

#[test]
fn throttling_keeps_space_near_quota() {
    let env: EnvRef = MemEnv::shared();
    let mut o = opts(env, EngineMode::Scavenger);
    let logical = 150u64 * 3000;
    o.space_limit = Some((logical as f64 * 1.5) as u64);
    // Disable auto-GC so reclamation happens only through the throttle —
    // the paper's "space-aware throttling" must carry the quota alone.
    o.auto_gc = false;
    let db = Db::open(o).unwrap();
    churn(&db, 150, 8, 3000);
    let s = db.stats();
    assert!(s.throttle_stalls > 0, "quota must have been hit");
    // Transient overshoot allowed (one memtable + one vSST), but space is
    // pulled back toward the quota.
    assert!(
        s.space.total() < (logical as f64 * 1.5) as u64 + 512 * 1024,
        "total {} too far above quota",
        s.space.total()
    );
    // Data intact under pressure.
    for i in 0..150u64 {
        assert_eq!(db.get(format!("k{i:04}")).unwrap().unwrap().len(), 3000);
    }
}

#[test]
fn index_space_amp_is_sane() {
    for mode in EngineMode::ALL {
        let env: EnvRef = MemEnv::shared();
        let db = Db::open(opts(env, mode)).unwrap();
        churn(&db, 200, 3, 2000);
        db.compact_all().unwrap();
        let sa = db.stats().index_space_amp;
        assert!((1.0..10.0).contains(&sa), "{mode:?}: index SA {sa}");
    }
}

#[test]
fn space_breakdown_sums_to_total_disk() {
    let env: EnvRef = MemEnv::shared();
    let db = Db::open(opts(env.clone(), EngineMode::Scavenger)).unwrap();
    churn(&db, 100, 2, 4000);
    let s = db.stats().space;
    let on_disk: u64 = scavenger_env::Env::total_file_bytes(&*env, "db/").unwrap();
    assert_eq!(s.total(), on_disk);
    assert!(s.ksst_bytes > 0 && s.value_bytes > 0 && s.manifest_bytes > 0);
    assert_eq!(s.other_bytes, 0, "no unclassified files");
}

#[test]
fn hot_files_accumulate_garbage_faster() {
    let env: EnvRef = MemEnv::shared();
    let mut o = opts(env, EngineMode::Scavenger);
    o.auto_gc = false;
    let db = Db::open(o).unwrap();
    // Cold base + hot churn to teach the DropCache.
    for i in 0..150u64 {
        db.put(format!("cold{i:03}"), vec![1u8; 3000]).unwrap();
    }
    for r in 0..10u64 {
        for i in 0..15u64 {
            db.put(format!("hot{i:02}"), vec![r as u8; 3000]).unwrap();
        }
        db.flush().unwrap();
    }
    db.compact_all().unwrap();
    // More churn now that hot keys are known.
    for r in 0..6u64 {
        for i in 0..15u64 {
            db.put(format!("hot{i:02}"), vec![(r + 50) as u8; 3000])
                .unwrap();
        }
        db.flush().unwrap();
    }
    db.compact_all().unwrap();
    let files = db.value_store().all_files();
    let avg = |hot: bool| {
        let v: Vec<f64> = files
            .iter()
            .filter(|m| m.hot == hot && m.entries > 0)
            .map(|m| m.garbage_ratio())
            .collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let hot_avg = avg(true);
    let cold_avg = avg(false);
    assert!(
        hot_avg >= cold_avg,
        "hot files should carry at least as much garbage: hot {hot_avg} vs cold {cold_avg}"
    );
}
