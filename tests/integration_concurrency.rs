//! Threaded-background-mode integration: concurrent readers and writers
//! with flush/compaction on a background thread.
//!
//! Readers assert *strict* consistency: every read goes through a pinned
//! superversion with a registered read point, so a seeded key must never
//! transiently read as absent and no dangling-value retry exists to
//! paper over a lost version — any inconsistency fails the test
//! immediately.

use scavenger::{Db, EngineMode, MemEnv, Options, ReadOptions};
use scavenger_env::EnvRef;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn threaded_opts(env: EnvRef, mode: EngineMode) -> Options {
    let mut o = Options::new(env, "db", mode);
    o.memtable_size = 32 * 1024;
    o.base_level_bytes = 128 * 1024;
    o.inline_background = false;
    o
}

#[test]
fn concurrent_readers_during_writes() {
    let env: EnvRef = MemEnv::shared();
    let db = Db::open(threaded_opts(env, EngineMode::Scavenger)).unwrap();
    // Seed.
    for i in 0..200u64 {
        db.put(format!("k{i:04}"), encode(i, 0)).unwrap();
    }
    db.flush().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for t in 0..3 {
        let db = db.clone();
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            let mut checked = 0u64;
            let mut i = t as u64;
            while !stop.load(Ordering::Relaxed) {
                let key = format!("k{:04}", i % 200);
                // Strict: the key was seeded and is never deleted, so a
                // `None` would mean a reader observed a torn state (the
                // pre-view engine tolerated transient `None` here).
                let v = db
                    .get(&key)
                    .unwrap()
                    .unwrap_or_else(|| panic!("strict consistency violated: {key} read as absent"));
                let (k, _ver) = decode(&v);
                assert_eq!(k, i % 200, "reader saw torn value");
                checked += 1;
                i += 7;
            }
            checked
        }));
    }

    // Writer churns versions.
    for round in 1..=20u64 {
        for i in 0..200u64 {
            db.put(format!("k{i:04}"), encode(i, round)).unwrap();
        }
    }
    db.flush().unwrap();
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        let checked = r.join().unwrap();
        assert!(checked > 0, "readers made progress");
    }
    // Final state correct.
    for i in 0..200u64 {
        let (k, ver) = decode(&db.get(format!("k{i:04}")).unwrap().unwrap());
        assert_eq!(k, i);
        assert_eq!(ver, 20);
    }
}

/// A pinned view taken mid-churn keeps reading its exact epoch while
/// writers, flushes, and compactions proceed underneath it.
#[test]
fn pinned_views_stay_consistent_during_churn() {
    let env: EnvRef = MemEnv::shared();
    let db = Db::open(threaded_opts(env, EngineMode::Scavenger)).unwrap();
    for i in 0..100u64 {
        db.put(format!("k{i:03}"), encode(i, 0)).unwrap();
    }
    db.flush().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..2 {
        let db = db.clone();
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            let mut pinned_reads = 0u64;
            while !stop.load(Ordering::Relaxed) {
                // Pin an epoch, then verify every key reads a version
                // from *one* round (the view must never mix epochs).
                let view = db.view();
                let mut round = None;
                for i in (0..100u64).step_by(13) {
                    let v = view
                        .get(format!("k{i:03}"))
                        .unwrap()
                        .expect("pinned view lost a seeded key");
                    let (k, ver) = decode(&v);
                    assert_eq!(k, i);
                    match round {
                        None => round = Some(ver),
                        // Writers fill rounds key-by-key, so a pinned
                        // view may straddle two *adjacent* rounds — but
                        // never resurrect older epochs or see the future.
                        Some(r) => assert!(
                            ver == r || ver + 1 == r || ver == r + 1,
                            "view mixed epochs: {ver} vs {r}"
                        ),
                    }
                    pinned_reads += 1;
                }
            }
            pinned_reads
        }));
    }

    for round in 1..=15u64 {
        for i in 0..100u64 {
            db.put(format!("k{i:03}"), encode(i, round)).unwrap();
        }
    }
    db.flush().unwrap();
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        assert!(r.join().unwrap() > 0);
    }
}

#[test]
fn concurrent_writers_interleave_safely() {
    let env: EnvRef = MemEnv::shared();
    let db = Db::open(threaded_opts(env, EngineMode::Terark)).unwrap();
    let mut writers = Vec::new();
    for t in 0..4u64 {
        let db = db.clone();
        writers.push(std::thread::spawn(move || {
            for i in 0..300u64 {
                let key = format!("t{t}-k{i:04}");
                db.put(key, encode(i, t)).unwrap();
            }
        }));
    }
    for w in writers {
        w.join().unwrap();
    }
    db.flush().unwrap();
    for t in 0..4u64 {
        for i in (0..300u64).step_by(17) {
            let v = db.get(format!("t{t}-k{i:04}")).unwrap().unwrap();
            let (k, ver) = decode(&v);
            assert_eq!((k, ver), (i, t));
        }
    }
}

#[test]
fn snapshot_isolation_under_concurrent_churn() {
    let env: EnvRef = MemEnv::shared();
    let db = Db::open(threaded_opts(env, EngineMode::Scavenger)).unwrap();
    for i in 0..100u64 {
        db.put(format!("k{i:03}"), encode(i, 0)).unwrap();
    }
    db.flush().unwrap();
    let snap = db.snapshot();

    let db2 = db.clone();
    let churn = std::thread::spawn(move || {
        for round in 1..=10u64 {
            for i in 0..100u64 {
                db2.put(format!("k{i:03}"), encode(i, round)).unwrap();
            }
        }
    });
    // Snapshot reads stay at version 0 throughout, through the owned
    // view and through the per-call options path alike.
    for n in 0..200 {
        let i = 37u64;
        let v = if n % 2 == 0 {
            snap.get(format!("k{i:03}")).unwrap().unwrap()
        } else {
            db.get_with(&ReadOptions::at_snapshot(&snap), format!("k{i:03}"))
                .unwrap()
                .unwrap()
        };
        assert_eq!(decode(&v), (i, 0));
    }
    churn.join().unwrap();
    let v = snap.get("k037").unwrap().unwrap();
    assert_eq!(decode(&v), (37, 0));
    // The pinned-options entry point agrees with the snapshot's own
    // read surface.
    let v = db
        .get_with(&ReadOptions::pinned(&snap), "k037")
        .unwrap()
        .unwrap();
    assert_eq!(decode(&v), (37, 0));
    drop(snap);
}

fn encode(key: u64, version: u64) -> Vec<u8> {
    let mut v = vec![0u8; 2048];
    v[..8].copy_from_slice(&key.to_le_bytes());
    v[8..16].copy_from_slice(&version.to_le_bytes());
    v
}

fn decode(v: &[u8]) -> (u64, u64) {
    (
        u64::from_le_bytes(v[..8].try_into().unwrap()),
        u64::from_le_bytes(v[8..16].try_into().unwrap()),
    )
}
