//! Threaded-background-mode integration: concurrent readers and writers
//! with flush/compaction on a background thread.

use scavenger::{Db, EngineMode, MemEnv, Options};
use scavenger_env::EnvRef;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn threaded_opts(env: EnvRef, mode: EngineMode) -> Options {
    let mut o = Options::new(env, "db", mode);
    o.memtable_size = 32 * 1024;
    o.base_level_bytes = 128 * 1024;
    o.inline_background = false;
    o
}

#[test]
fn concurrent_readers_during_writes() {
    let env: EnvRef = MemEnv::shared();
    let db = Db::open(threaded_opts(env, EngineMode::Scavenger)).unwrap();
    // Seed.
    for i in 0..200u64 {
        db.put(format!("k{i:04}"), encode(i, 0)).unwrap();
    }
    db.flush().unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for t in 0..3 {
        let db = db.clone();
        let stop = stop.clone();
        readers.push(std::thread::spawn(move || {
            let mut checked = 0u64;
            let mut i = t as u64;
            while !stop.load(Ordering::Relaxed) {
                let key = format!("k{:04}", i % 200);
                if let Some(v) = db.get(&key).unwrap() {
                    // Value must decode to a consistent (key, version) pair.
                    let (k, _ver) = decode(&v);
                    assert_eq!(k, i % 200, "reader saw torn value");
                    checked += 1;
                }
                i += 7;
            }
            checked
        }));
    }

    // Writer churns versions.
    for round in 1..=20u64 {
        for i in 0..200u64 {
            db.put(format!("k{i:04}"), encode(i, round)).unwrap();
        }
    }
    db.flush().unwrap();
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        let checked = r.join().unwrap();
        assert!(checked > 0, "readers made progress");
    }
    // Final state correct.
    for i in 0..200u64 {
        let (k, ver) = decode(&db.get(format!("k{i:04}")).unwrap().unwrap());
        assert_eq!(k, i);
        assert_eq!(ver, 20);
    }
}

#[test]
fn concurrent_writers_interleave_safely() {
    let env: EnvRef = MemEnv::shared();
    let db = Db::open(threaded_opts(env, EngineMode::Terark)).unwrap();
    let mut writers = Vec::new();
    for t in 0..4u64 {
        let db = db.clone();
        writers.push(std::thread::spawn(move || {
            for i in 0..300u64 {
                let key = format!("t{t}-k{i:04}");
                db.put(key, encode(i, t)).unwrap();
            }
        }));
    }
    for w in writers {
        w.join().unwrap();
    }
    db.flush().unwrap();
    for t in 0..4u64 {
        for i in (0..300u64).step_by(17) {
            let v = db.get(format!("t{t}-k{i:04}")).unwrap().unwrap();
            let (k, ver) = decode(&v);
            assert_eq!((k, ver), (i, t));
        }
    }
}

#[test]
fn snapshot_isolation_under_concurrent_churn() {
    let env: EnvRef = MemEnv::shared();
    let db = Db::open(threaded_opts(env, EngineMode::Scavenger)).unwrap();
    for i in 0..100u64 {
        db.put(format!("k{i:03}"), encode(i, 0)).unwrap();
    }
    db.flush().unwrap();
    let snap = db.snapshot();
    let snap_seq = snap.sequence();

    let db2 = db.clone();
    let churn = std::thread::spawn(move || {
        for round in 1..=10u64 {
            for i in 0..100u64 {
                db2.put(format!("k{i:03}"), encode(i, round)).unwrap();
            }
        }
    });
    // Snapshot reads stay at version 0 throughout.
    for _ in 0..200 {
        let i = 37u64;
        let v = db.get_at(format!("k{i:03}"), snap_seq).unwrap().unwrap();
        assert_eq!(decode(&v), (i, 0));
    }
    churn.join().unwrap();
    let v = db.get_at("k037", snap_seq).unwrap().unwrap();
    assert_eq!(decode(&v), (37, 0));
    drop(snap);
}

fn encode(key: u64, version: u64) -> Vec<u8> {
    let mut v = vec![0u8; 2048];
    v[..8].copy_from_slice(&key.to_le_bytes());
    v[8..16].copy_from_slice(&version.to_le_bytes());
    v
}

fn decode(v: &[u8]) -> (u64, u64) {
    (
        u64::from_le_bytes(v[..8].try_into().unwrap()),
        u64::from_le_bytes(v[8..16].try_into().unwrap()),
    )
}
