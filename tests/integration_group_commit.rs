//! Group-commit write-path integration: multi-writer batches through
//! the public `Db`/`DbShards` surface must form commit groups with
//! contiguous per-batch sequence ranges and lose nothing, and a failed
//! group fsync must degrade the *whole* group — never a partial batch —
//! with post-crash recovery still honoring the durable-floor oracle.

use scavenger::{
    Db, DbShards, Engine, EngineMode, MemEnv, Options, ShardedOptions, WriteBatch, WriteOptions,
    WriteReceipt,
};
use scavenger_env::{EnvRef, FaultEnv, FaultKind, FaultOp, FaultRule, Trigger};
use scavenger_workload::crash::{self, CrashOp, Model};
use std::sync::Barrier;

fn plain_opts(env: EnvRef) -> Options {
    let mut o = Options::new(env, "db", EngineMode::Scavenger);
    // Keep sequence arithmetic exact: no GC write-back consuming
    // sequence numbers behind the test's back.
    o.auto_gc = false;
    o
}

/// Small-file options matching the crash-recovery harness, so the
/// oracle run crosses flush boundaries.
fn small_opts(env: EnvRef) -> Options {
    let mut o = Options::new(env, "db", EngineMode::Scavenger);
    o.memtable_size = 16 * 1024;
    o.base_level_bytes = 64 * 1024;
    o.vsst_target_size = 32 * 1024;
    o.bg_retry_limit = 1;
    o.bg_retry_base = std::time::Duration::from_millis(1);
    o
}

/// Drive `threads` writers, each committing `per_thread` two-entry
/// batches with alternating sync, and verify receipts and data; returns
/// the final stats for contention assertions.
fn stress_round(threads: usize, per_thread: usize) -> scavenger::DbStats {
    let env: EnvRef = MemEnv::shared();
    let db = Db::open(plain_opts(env)).unwrap();
    let barrier = Barrier::new(threads);
    let receipts: Vec<(usize, usize, bool, WriteReceipt)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let db = db.clone();
            let barrier = &barrier;
            handles.push(s.spawn(move || {
                barrier.wait();
                let mut out = Vec::new();
                for i in 0..per_thread {
                    let mut b = WriteBatch::new();
                    b.put(
                        format!("t{t:02}k{i:04}").as_bytes(),
                        scavenger::Bytes::from(vec![t as u8; 32]),
                    );
                    b.put(
                        format!("t{t:02}k{i:04}x").as_bytes(),
                        scavenger::Bytes::from(vec![i as u8; 32]),
                    );
                    let sync = i % 2 == 0;
                    let r = db.write_with(&WriteOptions::with_sync(sync), b).unwrap();
                    out.push((t, i, sync, r));
                }
                out
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    // Contiguous ranges: every batch owns a 2-sequence range ending at
    // its receipt seq, the ends are unique, and the ranges tile the
    // whole span without gap or overlap.
    let mut ends: Vec<u64> = receipts.iter().map(|(_, _, _, r)| r.seq).collect();
    ends.sort_unstable();
    ends.dedup();
    assert_eq!(ends.len(), threads * per_thread, "duplicated receipt seq");
    for pair in ends.windows(2) {
        assert_eq!(pair[1] - pair[0], 2, "2-entry batches must tile the range");
    }
    // Receipts honor the requested durability: a sync rider is always
    // covered (it may additionally cover nosync groupmates).
    for (t, i, sync, r) in &receipts {
        assert!(r.group_len >= 1, "t{t} i{i}: committed batch in no group");
        if *sync {
            assert!(r.synced, "t{t} i{i}: sync write without fsync coverage");
        }
    }
    // No lost keys, no torn values.
    for (t, i, _, _) in &receipts {
        let v = db.get(format!("t{t:02}k{i:04}")).unwrap().unwrap();
        assert_eq!(&v[..], &vec![*t as u8; 32][..], "t{t} i{i}: wrong value");
    }
    // No invented keys either: the scan sees exactly the written set.
    let mut it = db.scan(b"", None).unwrap();
    let mut n = 0usize;
    while it.next_entry().unwrap().is_some() {
        n += 1;
    }
    assert_eq!(n, threads * per_thread * 2, "scan key count mismatch");

    let stats = db.stats();
    assert_eq!(stats.group_commit_batches, (threads * per_thread) as u64);
    assert!(stats.group_commit_groups >= 1);
    assert!(stats.group_commit_groups <= stats.group_commit_batches);
    stats
}

fn assert_contention_forms_groups(threads: usize, per_thread: usize) {
    // Grouping is probabilistic (a leader must be mid-commit while
    // another writer arrives), so allow a few fresh rounds before
    // declaring the path serialized; one round virtually always does it.
    let mut stats = stress_round(threads, per_thread);
    for _ in 0..2 {
        if stats.group_commit_groups < stats.group_commit_batches {
            break;
        }
        stats = stress_round(threads, per_thread);
    }
    assert!(
        stats.group_commit_groups < stats.group_commit_batches,
        "{threads} contending writers never shared a commit group \
         ({} groups for {} batches)",
        stats.group_commit_groups,
        stats.group_commit_batches
    );
    assert!(
        stats.group_commit_max_group >= 2,
        "grouping happened but max_group gauge missed it"
    );
    // Only sync riders can amortize an fsync away.
    let sync_writes = (threads * per_thread / 2) as u64;
    assert!(stats.group_commit_fsyncs_saved <= sync_writes);
}

#[test]
fn four_writers_form_groups_with_contiguous_ranges() {
    assert_contention_forms_groups(4, 200);
}

#[test]
fn eight_writers_form_groups_with_contiguous_ranges() {
    assert_contention_forms_groups(8, 200);
}

/// A failed group fsync fails every member of the group and none of it
/// reaches the memtable; after a crash the group is torn as a unit —
/// either every NACKed write recovered (the single WAL record survived)
/// or none did — while every acked sync write survives.
#[test]
fn fsync_failure_degrades_the_whole_group() {
    let fault = FaultEnv::wrap(MemEnv::shared(), 0x6f51);
    let env: EnvRef = fault.clone();
    let db = Db::open(plain_opts(env.clone())).unwrap();
    // Durable baseline before the fault arms (puts default to sync).
    for i in 0..8u32 {
        db.put(format!("base{i:02}"), vec![i as u8; 64]).unwrap();
    }
    // The next WAL fsync fails once; the write path must poison that
    // WAL and rotate away from it (fsyncgate), not retry the sync.
    fault.add_rule(FaultRule {
        op: FaultOp::Sync,
        path_contains: Some(".log".to_string()),
        trigger: Trigger::Nth(1),
        kind: FaultKind::Fail,
        one_shot: true,
    });

    let threads = 4usize;
    let per_thread = 16usize;
    let barrier = Barrier::new(threads);
    let results: Vec<(String, Vec<u8>, bool)> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let db = db.clone();
            let barrier = &barrier;
            handles.push(s.spawn(move || {
                barrier.wait();
                let mut out = Vec::new();
                for i in 0..per_thread {
                    let key = format!("t{t}k{i:03}");
                    let value = vec![(t * 32 + i) as u8; 128];
                    let acked = db
                        .put_with(&WriteOptions::with_sync(true), &key, value.clone())
                        .is_ok();
                    out.push((key, value, acked));
                }
                out
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });

    let nacked: Vec<_> = results.iter().filter(|(_, _, acked)| !acked).collect();
    assert!(!nacked.is_empty(), "armed fsync failure never surfaced");
    // Group-scoped failure: a NACKed write must not be readable — the
    // failed group never reached the memtable, partially or otherwise.
    for (key, _, _) in &nacked {
        assert_eq!(
            db.get(key).unwrap(),
            None,
            "{key}: NACKed write visible before crash"
        );
    }
    for (key, value, acked) in &results {
        if *acked {
            assert_eq!(
                db.get(key).unwrap().as_deref(),
                Some(&value[..]),
                "{key}: acked write lost before crash"
            );
        }
    }

    fault.crash();
    drop(db);
    fault.heal();
    let db = Db::open(plain_opts(env)).unwrap();

    // Every acked write was fsync-covered and must have survived.
    for i in 0..8u32 {
        assert_eq!(
            db.get(format!("base{i:02}")).unwrap().as_deref(),
            Some(&vec![i as u8; 64][..]),
            "baseline write lost"
        );
    }
    for (key, value, acked) in &results {
        if *acked {
            assert_eq!(
                db.get(key).unwrap().as_deref(),
                Some(&value[..]),
                "{key}: synced write lost across crash"
            );
        }
    }
    // Torn as a unit: the failed group is one WAL record, so recovery
    // must resurrect all of its members or none of them.
    let mut survivors = 0usize;
    for (key, value, _) in &nacked {
        if let Some(v) = db.get(key).unwrap() {
            assert_eq!(&v[..], &value[..], "{key}: torn value recovered");
            survivors += 1;
        }
    }
    assert!(
        survivors == 0 || survivors == nacked.len(),
        "failed group partially recovered: {survivors} of {} members",
        nacked.len()
    );
}

fn apply_op<E: Engine>(db: &E, op: &CrashOp) -> scavenger::Result<()> {
    match *op {
        CrashOp::Put {
            key,
            stamp,
            len,
            sync,
        } => db
            .put_with(
                &WriteOptions {
                    sync,
                    ..Default::default()
                },
                &crash::key_bytes(key),
                crash::value_bytes(key, stamp, len).into(),
            )
            .map(|_| ()),
        CrashOp::Delete { key, sync } => db
            .delete_with(
                &WriteOptions {
                    sync,
                    ..Default::default()
                },
                &crash::key_bytes(key),
            )
            .map(|_| ()),
        CrashOp::Flush => db.flush(),
        CrashOp::Gc => db.run_gc().map(|_| ()),
        CrashOp::TxnBatch { keys, stamp, len } => {
            let mut batch = scavenger::WriteBatch::new();
            for k in keys {
                batch.put(
                    crash::txn_key_bytes(k),
                    bytes::Bytes::from(crash::value_bytes(k, stamp, len)),
                );
            }
            db.write_with(
                &WriteOptions {
                    sync: true,
                    ..Default::default()
                },
                batch,
            )
            .map(|_| ())
        }
    }
}

fn recovered_model<E: Engine>(db: &E) -> Model {
    let mut m = Model::new();
    for entry in db.scan(b"", None).expect("scan after recovery") {
        let e = entry.expect("scan entry after recovery");
        m.insert(e.key.clone(), e.value.to_vec());
    }
    m
}

/// A mid-stream WAL fsync failure (the write is NACKed, the store keeps
/// running on a rotated WAL) followed by power loss still recovers to a
/// state the durable-floor oracle accepts: every synced acknowledged
/// write survives, nothing partially applied or reordered shows up.
#[test]
fn fsync_failure_then_crash_matches_durable_floor_oracle() {
    let seed = 0x6f52u64;
    let fault = FaultEnv::wrap(MemEnv::shared(), seed);
    let env: EnvRef = fault.clone();
    let ops = crash::gen_ops(seed, 80, 32);
    let db = Db::open(small_opts(env.clone())).unwrap();
    fault.add_rule(FaultRule {
        op: FaultOp::Sync,
        path_contains: Some(".log".to_string()),
        trigger: Trigger::Nth(3),
        kind: FaultKind::Fail,
        one_shot: true,
    });

    let mut acked = 0usize;
    let mut failed = false;
    for op in &ops {
        match apply_op(&db, op) {
            Ok(()) => acked += 1,
            Err(_) => {
                failed = true;
                break;
            }
        }
    }
    assert!(
        failed,
        "armed fsync failure never surfaced in {} ops",
        acked
    );
    let attempted = acked + 1;

    // Ride out the failure, then lose power and reopen on the
    // surviving bytes.
    fault.crash();
    drop(db);
    fault.heal();
    let db = Db::open(small_opts(env)).unwrap();
    let recovered = recovered_model(&db);
    let floor = crash::durable_floor(&ops, acked);
    let matched = crash::check_prefix_consistent(&recovered, &ops, floor, attempted)
        .unwrap_or_else(|e| panic!("seed={seed}: durable-floor oracle violated: {e}"));

    // The reopened store accepts new work on top of the matched prefix.
    let more = crash::gen_ops(seed ^ 0xab1e, 15, 32);
    for op in &more {
        apply_op(&db, op).unwrap_or_else(|e| panic!("post-recovery op failed: {e}"));
    }
    let mut expect = crash::apply_ops(&ops[..matched]);
    crash::apply_more(&mut expect, &more);
    assert_eq!(recovered_model(&db), expect, "post-recovery state diverged");
}

/// Sharded group-commit counters aggregate across shards, and a
/// multi-shard batch write returns one coherent aggregate receipt.
#[test]
fn sharded_stats_aggregate_group_commit_counters() {
    let env: EnvRef = MemEnv::shared();
    let mut so = ShardedOptions::new(env.clone(), "db", EngineMode::Scavenger);
    so.base = plain_opts(env);
    so.num_shards = 4;
    let db = DbShards::open(so).unwrap();
    for i in 0..64u32 {
        let r = db
            .put_with(
                &WriteOptions::with_sync(i % 2 == 0),
                format!("k{i:03}"),
                vec![i as u8; 64],
            )
            .unwrap();
        if i % 2 == 0 {
            assert!(r.synced, "k{i:03}: sync put without fsync coverage");
        }
    }
    // One batch fanned out to every shard: the aggregate receipt is
    // synced only if every shard covered its slice.
    let mut b = WriteBatch::new();
    for i in 0..16u32 {
        b.put(
            format!("fan{i:02}").as_bytes(),
            scavenger::Bytes::from(vec![i as u8; 32]),
        );
    }
    let r = db.write_with(&WriteOptions::default(), b).unwrap();
    assert!(r.synced, "default options are durable");
    assert!(r.group_len >= 1);
    assert!(r.seq > 0);

    let stats = db.stats();
    assert!(
        stats.group_commit_batches >= 64,
        "every shard-level commit counts as a batch"
    );
    assert!(stats.group_commit_groups >= 1);
    assert!(stats.group_commit_groups <= stats.group_commit_batches);
    assert!(stats.group_commit_max_group >= 1);
}
