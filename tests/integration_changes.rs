//! Change-stream conformance: the CDC contract end to end, against
//! both engine handles (single [`Db`], 4-shard [`DbShards`]) across
//! the KV-separated engine modes (Scavenger, Titan, Terark).
//!
//! The contract under test:
//!
//! * **Exactly committed history** — a subscriber from `Oldest` sees
//!   every committed `(key, op)` exactly once, in per-key commit
//!   order, with per-shard sequence numbers strictly increasing; GC
//!   write-back relocations are invisible.
//! * **Resume tokens** — a stream dropped mid-replay resumes from its
//!   token on a fresh stream with no loss and no duplicates, even
//!   with flush/compaction/GC churn in between.
//! * **Subscriber pinning** — WAL reclamation never deletes history a
//!   registered subscriber still needs, no matter how much churn runs
//!   while the subscriber lags (`cdc_retention = 0`, so only the
//!   registration protects it).
//! * **Crash recovery** — with a speculative retention budget, a
//!   resume token minted before a crash replays the exact remainder
//!   after reopen.

use scavenger::{
    ChangeOp, ChangeRecord, ChangeStream, ChangeSubscriber, Db, DbShards, Engine, EngineMode,
    MemEnv, Options, ShardedOptions, SubscribeFrom, WriteBatch, WriteOptions,
};
use scavenger_env::EnvRef;
use std::collections::HashMap;

/// Per-key oracle: the exact committed mutation history, in commit
/// order (`Some(value)` = put, `None` = delete).
type Oracle = HashMap<Vec<u8>, Vec<Option<Vec<u8>>>>;

fn key(i: u32) -> Vec<u8> {
    format!("cdckey{:04}", i).into_bytes()
}

fn val(i: u32, round: u32) -> Vec<u8> {
    // Big enough to force value separation in every KV-separated mode.
    let mut v = format!("v{round:03}-").into_bytes();
    v.resize(256, (i % 251) as u8);
    v
}

/// Drive a deterministic churny workload: overwrite rounds, deletes,
/// atomic batches, with flush + GC between rounds so history crosses
/// WAL rotations, compactions, and value-log rewrites.
fn churn<E: Engine>(db: &E, oracle: &mut Oracle, rounds: u32, keys: u32) {
    let opts = WriteOptions::default();
    for round in 0..rounds {
        for i in 0..keys {
            let k = key(i);
            let v = val(i, round);
            db.put_with(&opts, &k, v.clone().into()).unwrap();
            oracle.entry(k).or_default().push(Some(v));
        }
        // Delete a sliding window of keys each round.
        for i in (round * 3) % keys..((round * 3) % keys + 3).min(keys) {
            let k = key(i);
            db.delete_with(&opts, &k).unwrap();
            oracle.entry(k).or_default().push(None);
        }
        // One atomic batch per round.
        let mut batch = WriteBatch::new();
        for i in 0..4 {
            let k = key(keys + i);
            let v = val(keys + i, round);
            batch.put(k.clone(), v.clone());
            oracle.entry(k).or_default().push(Some(v));
        }
        db.write_with(&opts, batch).unwrap();
        db.flush().unwrap();
        let _ = db.run_gc();
    }
}

fn drain<S: ChangeStream>(s: &mut S) -> Vec<ChangeRecord> {
    let mut out = Vec::new();
    loop {
        let batch = s.poll_changes(173).unwrap();
        if batch.is_empty() {
            return out;
        }
        out.extend(batch);
    }
}

/// Check delivered events against the oracle: exact per-key history,
/// nothing extra (no GC relocations), per-shard seqs strictly
/// increasing.
fn assert_exact_history(events: &[ChangeRecord], oracle: &Oracle) {
    let mut last_seq: HashMap<usize, u64> = HashMap::new();
    let mut got: Oracle = HashMap::new();
    for e in events {
        if let Some(prev) = last_seq.insert(e.shard, e.seq) {
            assert!(e.seq > prev, "shard {} seq regressed", e.shard);
        }
        let entry = match &e.op {
            ChangeOp::Put(v) => Some(v.as_ref().to_vec()),
            ChangeOp::Delete => None,
        };
        got.entry(e.key.clone()).or_default().push(entry);
    }
    assert_eq!(
        got.len(),
        oracle.len(),
        "key coverage mismatch: {} streamed vs {} committed",
        got.len(),
        oracle.len()
    );
    for (k, want) in oracle {
        let have = got
            .get(k)
            .unwrap_or_else(|| panic!("key {:?} missing from stream", String::from_utf8_lossy(k)));
        assert_eq!(
            have,
            want,
            "history mismatch for key {:?}",
            String::from_utf8_lossy(k)
        );
    }
}

fn single(env: EnvRef, dir: &str, mode: EngineMode) -> Db {
    let mut o = Options::new(env, dir, mode);
    o.memtable_size = 8 * 1024;
    o.cdc_ring_bytes = 64 * 1024;
    Db::open(o).unwrap()
}

fn sharded(env: EnvRef, dir: &str, mode: EngineMode) -> DbShards {
    let mut so = ShardedOptions::new(env.clone(), dir, mode);
    so.base = Options::new(env, dir, mode);
    so.base.memtable_size = 8 * 1024;
    so.base.cdc_ring_bytes = 64 * 1024;
    so.num_shards = 4;
    DbShards::open(so).unwrap()
}

/// A subscriber registered *before* the churn holds its low-water mark
/// through every flush/compaction/GC cycle, then replays the exact
/// committed history — with `cdc_retention = 0`, only the registration
/// keeps that WAL history alive.
fn slow_subscriber_sees_exact_history<H>(db: &H)
where
    H: Engine + ChangeSubscriber,
{
    let mut early = db.subscribe_changes(SubscribeFrom::Oldest).unwrap();
    let mut oracle = Oracle::new();
    churn(db, &mut oracle, 6, 20);
    let events = drain(&mut early);
    assert_exact_history(&events, &oracle);
    assert_eq!(early.lag(), 0, "drained stream must report zero lag");
}

/// Stop mid-replay, throw the stream away, churn more, resume from the
/// token: the concatenation is exactly the committed history.
fn resume_token_survives_churn<H>(db: &H)
where
    H: Engine + ChangeSubscriber,
{
    let mut oracle = Oracle::new();
    churn(db, &mut oracle, 3, 16);

    let mut first = db.subscribe_changes(SubscribeFrom::Oldest).unwrap();
    let mut head = Vec::new();
    while head.len() < 30 {
        let batch = first.poll_changes(7).unwrap();
        assert!(!batch.is_empty(), "history exhausted before the cut point");
        head.extend(batch);
    }
    let token = first.resume_token();
    drop(first);

    // More churn between disconnect and resume.
    churn(db, &mut oracle, 2, 16);

    let mut second = db.subscribe_changes(SubscribeFrom::Token(token)).unwrap();
    let tail = drain(&mut second);
    let mut all = head;
    all.extend(tail);
    assert_exact_history(&all, &oracle);
}

fn run_single(mode: EngineMode, dir: &str) {
    let db = single(MemEnv::shared(), dir, mode);
    slow_subscriber_sees_exact_history(&db);
}

fn run_sharded(mode: EngineMode, dir: &str) {
    let db = sharded(MemEnv::shared(), dir, mode);
    slow_subscriber_sees_exact_history(&db);
}

#[test]
fn exact_history_db_scavenger() {
    run_single(EngineMode::Scavenger, "cdc-sc");
}

#[test]
fn exact_history_db_titan() {
    run_single(EngineMode::Titan, "cdc-ti");
}

#[test]
fn exact_history_db_terark() {
    run_single(EngineMode::Terark, "cdc-te");
}

#[test]
fn exact_history_shards_scavenger() {
    run_sharded(EngineMode::Scavenger, "cdc-sh-sc");
}

#[test]
fn exact_history_shards_titan() {
    run_sharded(EngineMode::Titan, "cdc-sh-ti");
}

#[test]
fn exact_history_shards_terark() {
    run_sharded(EngineMode::Terark, "cdc-sh-te");
}

#[test]
fn resume_across_churn_db() {
    let db = single(MemEnv::shared(), "cdc-res", EngineMode::Scavenger);
    resume_token_survives_churn(&db);
}

#[test]
fn resume_across_churn_shards() {
    let db = sharded(MemEnv::shared(), "cdc-res-sh", EngineMode::Scavenger);
    resume_token_survives_churn(&db);
}

/// Crash (drop without flush) mid-stream, reopen on the surviving
/// bytes, resume from the pre-crash token: the replayed remainder plus
/// the pre-crash head is exactly the synced committed history. Needs a
/// speculative retention budget — subscriber registrations do not
/// survive the process.
fn crash_resume<H, F>(open: F, dir: &str)
where
    H: Engine + ChangeSubscriber,
    F: Fn(EnvRef, &str) -> H,
{
    let env = MemEnv::shared();
    let mut oracle = Oracle::new();
    let head;
    let token;
    {
        let db = open(env.clone(), dir);
        let opts = WriteOptions {
            sync: true,
            ..Default::default()
        };
        for round in 0..4u32 {
            for i in 0..12u32 {
                let k = key(i);
                let v = val(i, round);
                db.put_with(&opts, &k, v.clone().into()).unwrap();
                oracle.entry(k).or_default().push(Some(v));
            }
            db.flush().unwrap();
        }
        let mut s = db.subscribe_changes(SubscribeFrom::Oldest).unwrap();
        let mut h = Vec::new();
        while h.len() < 17 {
            h.extend(s.poll_changes(5).unwrap());
        }
        token = s.resume_token();
        head = h;
        // Crash: drop the handle with the stream still open — no
        // graceful close, no final flush.
    }

    let db = open(env, dir);
    let mut s = db.subscribe_changes(SubscribeFrom::Token(token)).unwrap();
    let tail = drain(&mut s);
    let mut all = head;
    all.extend(tail);
    assert_exact_history(&all, &oracle);
}

#[test]
fn crash_resume_db() {
    crash_resume(
        |env, dir| {
            let mut o = Options::new(env, dir, EngineMode::Scavenger);
            o.memtable_size = 8 * 1024;
            o.cdc_ring_bytes = 64 * 1024;
            o.cdc_retention = 64 * 1024 * 1024;
            Db::open(o).unwrap()
        },
        "cdc-crash",
    );
}

#[test]
fn crash_resume_shards() {
    crash_resume(
        |env, dir| {
            let mut so = ShardedOptions::new(env.clone(), dir, EngineMode::Scavenger);
            so.base = Options::new(env, dir, EngineMode::Scavenger);
            so.base.memtable_size = 8 * 1024;
            so.base.cdc_ring_bytes = 64 * 1024;
            so.base.cdc_retention = 64 * 1024 * 1024;
            so.num_shards = 4;
            DbShards::open(so).unwrap()
        },
        "cdc-crash-sh",
    );
}
