//! End-to-end behaviour of all five engine modes under a realistic
//! mixed workload, with full read verification.

use scavenger::{Db, EngineMode, MemEnv, Options};
use scavenger_env::EnvRef;
use scavenger_workload::dist::KeyDist;
use scavenger_workload::runner::Runner;
use scavenger_workload::values::ValueGen;
use scavenger_workload::KvStore;

struct Store<'a>(&'a Db);

impl KvStore for Store<'_> {
    fn put(&self, key: &[u8], value: &[u8]) -> scavenger::Result<()> {
        self.0.put(key, value.to_vec()).map(|_| ())
    }
    fn get(&self, key: &[u8]) -> scavenger::Result<Option<Vec<u8>>> {
        Ok(self.0.get(key)?.map(|b| b.to_vec()))
    }
    fn delete(&self, key: &[u8]) -> scavenger::Result<()> {
        self.0.delete(key).map(|_| ())
    }
    fn scan(&self, start: &[u8], limit: usize) -> scavenger::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut it = self.0.scan(start, None)?;
        Ok(it
            .collect_n(limit)?
            .into_iter()
            .map(|e| (e.key, e.value.to_vec()))
            .collect())
    }
}

fn small_opts(env: EnvRef, mode: EngineMode) -> Options {
    let mut o = Options::new(env, "db", mode);
    o.memtable_size = 32 * 1024;
    o.vsst_target_size = 128 * 1024;
    o.base_level_bytes = 128 * 1024;
    o.ksst_target_size = 64 * 1024;
    o
}

fn churn_and_verify(mode: EngineMode, value_gen: ValueGen, seed: u64) {
    let env: EnvRef = MemEnv::shared();
    let db = Db::open(small_opts(env, mode)).unwrap();
    let store = Store(&db);
    let n = 300u64;
    let mut runner = Runner::new(n, value_gen, seed).with_verification();
    runner.load(&store, n).unwrap();
    db.flush().unwrap();

    let dist = KeyDist::zipfian(n, 0.9);
    for _ in 0..4 {
        runner.update(&store, &dist, 400).unwrap();
        db.flush().unwrap();
    }
    // Every key must read back its latest value (verification is inside
    // the runner).
    let uniform = KeyDist::uniform(n);
    runner.read(&store, &uniform, 2 * n).unwrap();

    // Scans agree with point reads.
    let rows = store.scan(b"user", 50).unwrap();
    assert!(!rows.is_empty());
    for (k, v) in &rows {
        assert_eq!(store.get(k).unwrap().unwrap(), *v);
    }

    // Space never falls below the logical dataset (no data loss).
    let total = db.stats().space.total();
    let logical = runner.logical_bytes();
    assert!(
        total as f64 > logical as f64 * 0.9,
        "{mode:?}: disk {total} vs logical {logical}"
    );
}

#[test]
fn mixed_8k_churn_all_modes() {
    for mode in EngineMode::ALL {
        churn_and_verify(mode, ValueGen::mixed_8k(), 11);
    }
}

#[test]
fn pareto_churn_all_modes() {
    for mode in EngineMode::ALL {
        churn_and_verify(mode, ValueGen::pareto_1k(), 13);
    }
}

#[test]
fn fixed_16k_churn_all_modes() {
    for mode in EngineMode::ALL {
        churn_and_verify(mode, ValueGen::fixed(16 * 1024), 17);
    }
}

#[test]
fn deletions_interleaved_with_updates() {
    for mode in EngineMode::ALL {
        let env: EnvRef = MemEnv::shared();
        let db = Db::open(small_opts(env, mode)).unwrap();
        for i in 0..200u64 {
            db.put(format!("k{i:04}"), vec![i as u8; 2048]).unwrap();
        }
        for i in (0..200u64).step_by(3) {
            db.delete(format!("k{i:04}")).unwrap();
        }
        db.flush().unwrap();
        db.compact_all().unwrap();
        db.run_gc_until_clean().unwrap();
        for i in 0..200u64 {
            let got = db.get(format!("k{i:04}")).unwrap();
            if i % 3 == 0 {
                assert!(got.is_none(), "{mode:?} k{i} should be deleted");
            } else {
                assert_eq!(got.unwrap(), bytes::Bytes::from(vec![i as u8; 2048]));
            }
        }
    }
}

#[test]
fn scan_ranges_are_exact_across_modes() {
    for mode in EngineMode::ALL {
        let env: EnvRef = MemEnv::shared();
        let db = Db::open(small_opts(env, mode)).unwrap();
        for i in 0..100u64 {
            db.put(format!("k{i:04}"), vec![7u8; 1500]).unwrap();
        }
        db.flush().unwrap();
        let mut it = db.scan(b"k0020", Some(b"k0030")).unwrap();
        let got = it.collect_n(usize::MAX).unwrap();
        assert_eq!(got.len(), 10, "{mode:?}");
        assert_eq!(got[0].key, b"k0020".to_vec());
        assert_eq!(got[9].key, b"k0029".to_vec());
    }
}

#[test]
fn batched_writes_are_atomic_units() {
    let env: EnvRef = MemEnv::shared();
    let db = Db::open(small_opts(env, EngineMode::Scavenger)).unwrap();
    let mut batch = scavenger_lsm::WriteBatch::new();
    for i in 0..50 {
        batch.put(
            format!("b{i:02}").into_bytes(),
            bytes::Bytes::from(vec![1u8; 1024]),
        );
    }
    batch.delete(b"b00");
    db.write(batch).unwrap();
    assert!(
        db.get("b00").unwrap().is_none(),
        "later delete wins in batch"
    );
    for i in 1..50 {
        assert!(db.get(format!("b{i:02}")).unwrap().is_some());
    }
}
