//! Crash-recovery integration: WAL replay, manifest replay, value-store
//! reconstruction, and fault injection (torn WAL tails).

use scavenger::{Db, EngineMode, MemEnv, Options};
use scavenger_env::{Env, EnvRef};
use std::sync::Arc;

fn opts(env: EnvRef, mode: EngineMode) -> Options {
    let mut o = Options::new(env, "db", mode);
    o.memtable_size = 32 * 1024;
    o.base_level_bytes = 128 * 1024;
    o.vsst_target_size = 128 * 1024;
    o
}

fn value(i: u64, round: u64) -> Vec<u8> {
    let mut v = vec![(i + round) as u8; 3000];
    v[..8].copy_from_slice(&round.to_le_bytes());
    v
}

#[test]
fn reopen_after_clean_shutdown_every_mode() {
    for mode in EngineMode::ALL {
        let env = MemEnv::shared();
        {
            let db = Db::open(opts(env.clone(), mode)).unwrap();
            for i in 0..150u64 {
                db.put(format!("k{i:04}"), value(i, 0)).unwrap();
            }
            db.flush().unwrap();
            for i in 0..150u64 {
                db.put(format!("k{i:04}"), value(i, 1)).unwrap();
            }
            // No final flush: the tail lives in the WAL.
        }
        let db = Db::open(opts(env.clone(), mode)).unwrap();
        for i in 0..150u64 {
            assert_eq!(
                db.get(format!("k{i:04}")).unwrap().unwrap(),
                bytes::Bytes::from(value(i, 1)),
                "{mode:?} k{i}"
            );
        }
    }
}

#[test]
fn repeated_reopen_cycles_preserve_everything() {
    let env = MemEnv::shared();
    let mut version = 0u64;
    for cycle in 0..5 {
        let db = Db::open(opts(env.clone(), EngineMode::Scavenger)).unwrap();
        // Verify previous cycle.
        if cycle > 0 {
            for i in 0..100u64 {
                assert_eq!(
                    db.get(format!("k{i:03}")).unwrap().unwrap(),
                    bytes::Bytes::from(value(i, version)),
                    "cycle {cycle} key {i}"
                );
            }
        }
        version = cycle + 1;
        for i in 0..100u64 {
            db.put(format!("k{i:03}"), value(i, version)).unwrap();
        }
        if cycle % 2 == 0 {
            db.flush().unwrap();
            db.compact_all().unwrap();
            db.run_gc_until_clean().unwrap();
        }
    }
}

#[test]
fn torn_wal_tail_loses_only_the_torn_batch() {
    let env = MemEnv::shared();
    {
        let mut o = opts(env.clone(), EngineMode::Scavenger);
        o.memtable_size = 10 << 20; // keep everything in the WAL
        let db = Db::open(o).unwrap();
        db.put("stable", vec![1u8; 2000]).unwrap();
        db.put("torn", vec![2u8; 2000]).unwrap();
    }
    // Tear mid-way through the last record of the newest WAL.
    let wal = env
        .list_prefix("db/")
        .unwrap()
        .into_iter()
        .rfind(|p| p.ends_with(".log"))
        .unwrap();
    let len = env.file_size(&wal).unwrap();
    env.truncate_file(&wal, len - 100).unwrap();

    let db = Db::open(opts(env.clone(), EngineMode::Scavenger)).unwrap();
    assert!(db.get("stable").unwrap().is_some(), "intact batch survives");
    assert!(
        db.get("torn").unwrap().is_none(),
        "torn batch dropped cleanly"
    );
    // The engine keeps working after recovery.
    db.put("after", vec![3u8; 2000]).unwrap();
    assert!(db.get("after").unwrap().is_some());
}

#[test]
fn recovery_reconstructs_value_store_state() {
    let env = MemEnv::shared();
    let exposed_before;
    {
        let mut o = opts(env.clone(), EngineMode::Scavenger);
        o.auto_gc = false;
        let db = Db::open(o).unwrap();
        for round in 0..3u64 {
            for i in 0..120u64 {
                db.put(format!("k{i:03}"), value(i, round)).unwrap();
            }
            db.flush().unwrap();
        }
        db.compact_all().unwrap();
        exposed_before = db.stats().exposed_garbage_bytes;
        assert!(exposed_before > 0, "churn must expose garbage");
    }
    {
        let mut o = opts(env.clone(), EngineMode::Scavenger);
        o.auto_gc = false;
        let db = Db::open(o).unwrap();
        let exposed_after = db.stats().exposed_garbage_bytes;
        assert_eq!(
            exposed_after, exposed_before,
            "garbage accounting must survive restarts"
        );
        // And GC still works on the recovered state.
        let jobs = db.run_gc_until_clean().unwrap();
        assert!(jobs > 0);
        for i in 0..120u64 {
            assert_eq!(
                db.get(format!("k{i:03}")).unwrap().unwrap(),
                bytes::Bytes::from(value(i, 2))
            );
        }
    }
}

#[test]
fn orphan_value_files_are_cleaned_on_open() {
    let env = MemEnv::shared();
    {
        let db = Db::open(opts(env.clone(), EngineMode::Scavenger)).unwrap();
        db.put("k", vec![5u8; 4096]).unwrap();
        db.flush().unwrap();
    }
    // Simulate a crash that left a half-written vSST behind.
    {
        let mut w = env
            .new_writable("db/999999.vsst", scavenger::IoClass::Other)
            .unwrap();
        w.append(b"partial garbage").unwrap();
        w.sync().unwrap();
    }
    let db = Db::open(opts(env.clone(), EngineMode::Scavenger)).unwrap();
    assert!(
        !Arc::clone(&env).file_exists("db/999999.vsst"),
        "orphan removed during open"
    );
    assert_eq!(db.get("k").unwrap().unwrap().len(), 4096);
}
