//! Crash-recovery integration: WAL replay, manifest replay, value-store
//! reconstruction, and fault injection (torn WAL tails).

use scavenger::{Db, EngineMode, MemEnv, Options};
use scavenger_env::{Env, EnvRef};
use std::sync::Arc;

fn opts(env: EnvRef, mode: EngineMode) -> Options {
    let mut o = Options::new(env, "db", mode);
    o.memtable_size = 32 * 1024;
    o.base_level_bytes = 128 * 1024;
    o.vsst_target_size = 128 * 1024;
    o
}

fn value(i: u64, round: u64) -> Vec<u8> {
    let mut v = vec![(i + round) as u8; 3000];
    v[..8].copy_from_slice(&round.to_le_bytes());
    v
}

#[test]
fn reopen_after_clean_shutdown_every_mode() {
    for mode in EngineMode::ALL {
        let env = MemEnv::shared();
        {
            let db = Db::open(opts(env.clone(), mode)).unwrap();
            for i in 0..150u64 {
                db.put(format!("k{i:04}"), value(i, 0)).unwrap();
            }
            db.flush().unwrap();
            for i in 0..150u64 {
                db.put(format!("k{i:04}"), value(i, 1)).unwrap();
            }
            // No final flush: the tail lives in the WAL.
        }
        let db = Db::open(opts(env.clone(), mode)).unwrap();
        for i in 0..150u64 {
            assert_eq!(
                db.get(format!("k{i:04}")).unwrap().unwrap(),
                bytes::Bytes::from(value(i, 1)),
                "{mode:?} k{i}"
            );
        }
    }
}

#[test]
fn repeated_reopen_cycles_preserve_everything() {
    let env = MemEnv::shared();
    let mut version = 0u64;
    for cycle in 0..5 {
        let db = Db::open(opts(env.clone(), EngineMode::Scavenger)).unwrap();
        // Verify previous cycle.
        if cycle > 0 {
            for i in 0..100u64 {
                assert_eq!(
                    db.get(format!("k{i:03}")).unwrap().unwrap(),
                    bytes::Bytes::from(value(i, version)),
                    "cycle {cycle} key {i}"
                );
            }
        }
        version = cycle + 1;
        for i in 0..100u64 {
            db.put(format!("k{i:03}"), value(i, version)).unwrap();
        }
        if cycle % 2 == 0 {
            db.flush().unwrap();
            db.compact_all().unwrap();
            db.run_gc_until_clean().unwrap();
        }
    }
}

#[test]
fn torn_wal_tail_loses_only_the_torn_batch() {
    let env = MemEnv::shared();
    {
        let mut o = opts(env.clone(), EngineMode::Scavenger);
        o.memtable_size = 10 << 20; // keep everything in the WAL
        let db = Db::open(o).unwrap();
        db.put("stable", vec![1u8; 2000]).unwrap();
        db.put("torn", vec![2u8; 2000]).unwrap();
    }
    // Tear mid-way through the last record of the newest WAL.
    let wal = env
        .list_prefix("db/")
        .unwrap()
        .into_iter()
        .rfind(|p| p.ends_with(".log"))
        .unwrap();
    let len = env.file_size(&wal).unwrap();
    env.truncate_file(&wal, len - 100).unwrap();

    let db = Db::open(opts(env.clone(), EngineMode::Scavenger)).unwrap();
    assert!(db.get("stable").unwrap().is_some(), "intact batch survives");
    assert!(
        db.get("torn").unwrap().is_none(),
        "torn batch dropped cleanly"
    );
    // The engine keeps working after recovery.
    db.put("after", vec![3u8; 2000]).unwrap();
    assert!(db.get("after").unwrap().is_some());
}

#[test]
fn recovery_reconstructs_value_store_state() {
    let env = MemEnv::shared();
    let exposed_before;
    {
        let mut o = opts(env.clone(), EngineMode::Scavenger);
        o.auto_gc = false;
        let db = Db::open(o).unwrap();
        for round in 0..3u64 {
            for i in 0..120u64 {
                db.put(format!("k{i:03}"), value(i, round)).unwrap();
            }
            db.flush().unwrap();
        }
        db.compact_all().unwrap();
        exposed_before = db.stats().exposed_garbage_bytes;
        assert!(exposed_before > 0, "churn must expose garbage");
    }
    {
        let mut o = opts(env.clone(), EngineMode::Scavenger);
        o.auto_gc = false;
        let db = Db::open(o).unwrap();
        let exposed_after = db.stats().exposed_garbage_bytes;
        assert_eq!(
            exposed_after, exposed_before,
            "garbage accounting must survive restarts"
        );
        // And GC still works on the recovered state.
        let jobs = db.run_gc_until_clean().unwrap();
        assert!(jobs > 0);
        for i in 0..120u64 {
            assert_eq!(
                db.get(format!("k{i:03}")).unwrap().unwrap(),
                bytes::Bytes::from(value(i, 2))
            );
        }
    }
}

fn blob_count(env: &Arc<scavenger_env::MemEnv>) -> usize {
    env.list_prefix("db/")
        .unwrap()
        .iter()
        .filter(|p| p.ends_with(".blob"))
        .count()
}

/// Titan's write-back GC defers blob deletion while a read point
/// predates the write-back barrier. That queue is in-memory: a crash
/// loses it. The collected-but-undeleted files must survive the crash
/// (they are still registered — a pre-crash reader could still address
/// them) and must be re-collected after reopen, not leaked forever.
#[test]
fn titan_deferred_deletion_queue_is_recovered_after_crash() {
    let env = MemEnv::shared();
    let deferred_blobs;
    {
        let mut o = opts(env.clone(), EngineMode::Titan);
        o.auto_gc = false;
        let db = Db::open(o).unwrap();
        for i in 0..100u64 {
            db.put(format!("k{i:03}"), value(i, 0)).unwrap();
        }
        db.flush().unwrap();
        // Partial overwrite: round-0 files keep live records, so GC
        // must relocate (not just drop) and deletion is barrier-gated.
        for i in 0..50u64 {
            db.put(format!("k{i:03}"), value(i, 1)).unwrap();
        }
        db.flush().unwrap();
        db.compact_all().unwrap();
        // Pin a view, then advance the sequence so the write-back
        // barrier postdates the pin. (A *snapshot* would defer the
        // whole GC job; a transient pin gates only the deletion.)
        let view = db.view();
        for i in 0..5u64 {
            db.put(format!("x{i:03}"), value(i, 2)).unwrap();
        }
        let exposed_before = db.stats().exposed_garbage_bytes;
        let files_before = db.stats().value_files;
        let jobs = db.run_gc_until_clean().unwrap();
        assert!(jobs > 0, "churn must give write-back GC something to do");
        let s = db.stats();
        assert!(
            s.value_files >= files_before,
            "deferred files must stay registered while the pin predates \
             the barrier ({files_before} files before GC, {} after)",
            s.value_files
        );
        assert!(
            s.exposed_garbage_bytes >= exposed_before,
            "deferred files keep their exposed garbage until reaped"
        );
        deferred_blobs = blob_count(&env);
        for i in 0..50u64 {
            assert_eq!(
                view.get(format!("k{i:03}")).unwrap().unwrap(),
                bytes::Bytes::from(value(i, 1)),
                "reader predating the barrier must still resolve"
            );
        }
        // Drop without reaping: the queue dies with the process.
    }
    let mut o = opts(env.clone(), EngineMode::Titan);
    o.auto_gc = false;
    let db = Db::open(o).unwrap();
    // The stale collected files are pure garbage now; GC re-collects
    // them instead of leaking them forever.
    let jobs = db.run_gc_until_clean().unwrap();
    assert!(jobs > 0, "recovered garbage must be re-collected");
    assert!(
        blob_count(&env) < deferred_blobs,
        "stale deferred blobs must be reclaimed after reopen \
         ({deferred_blobs} before, {} after)",
        blob_count(&env)
    );
    assert_eq!(db.stats().exposed_garbage_bytes, 0);
    for i in 0..50u64 {
        assert_eq!(
            db.get(format!("k{i:03}")).unwrap().unwrap(),
            bytes::Bytes::from(value(i, 1))
        );
    }
    for i in 50..100u64 {
        assert_eq!(
            db.get(format!("k{i:03}")).unwrap().unwrap(),
            bytes::Bytes::from(value(i, 0))
        );
    }
}

/// BlobDB deletes a blob file once fully exhausted through compaction.
/// The manifest commit and the physical unlink are separate steps — a
/// crash (or injected I/O failure) between them leaves orphan blob
/// files on disk. Reopen must reap them via orphan cleanup.
#[test]
fn blobdb_orphaned_exhausted_files_are_reaped_on_reopen() {
    use scavenger_env::{FaultEnv, FaultKind, FaultOp, FaultRule, Trigger};
    let fault = FaultEnv::wrap(MemEnv::shared(), 0xb10b);
    let env: EnvRef = fault.clone();
    {
        let mut o = opts(env.clone(), EngineMode::BlobDb);
        o.auto_gc = false;
        let db = Db::open(o).unwrap();
        for i in 0..100u64 {
            db.put(format!("k{i:03}"), value(i, 0)).unwrap();
        }
        db.flush().unwrap();
        // Every physical blob unlink now fails: the overwrite round's
        // inline flushes/compactions exhaust the round-0 files and
        // commit their deletion to the manifest, but the files linger
        // on disk.
        fault.add_rule(FaultRule {
            op: FaultOp::Delete,
            path_contains: Some(".blob".to_string()),
            trigger: Trigger::Always,
            kind: FaultKind::Fail,
            one_shot: false,
        });
        for i in 0..100u64 {
            db.put(format!("k{i:03}"), value(i, 1)).unwrap();
        }
        db.flush().unwrap();
        db.compact_all().unwrap();
        let s = db.stats();
        let on_disk = env
            .list_prefix("db/")
            .unwrap()
            .iter()
            .filter(|p| p.ends_with(".blob"))
            .count();
        assert!(
            (on_disk as u64) > s.value_files,
            "exhausted files must linger as orphans while unlinks fail \
             ({on_disk} on disk, {} registered)",
            s.value_files
        );
    }
    fault.clear_rules();
    let mut o = opts(env.clone(), EngineMode::BlobDb);
    o.auto_gc = false;
    let db = Db::open(o).unwrap();
    let s = db.stats();
    let on_disk = env
        .list_prefix("db/")
        .unwrap()
        .iter()
        .filter(|p| p.ends_with(".blob"))
        .count();
    assert_eq!(
        on_disk as u64, s.value_files,
        "reopen must reap orphaned exhausted blobs"
    );
    for i in 0..100u64 {
        assert_eq!(
            db.get(format!("k{i:03}")).unwrap().unwrap(),
            bytes::Bytes::from(value(i, 1))
        );
    }
}

#[test]
fn orphan_value_files_are_cleaned_on_open() {
    let env = MemEnv::shared();
    {
        let db = Db::open(opts(env.clone(), EngineMode::Scavenger)).unwrap();
        db.put("k", vec![5u8; 4096]).unwrap();
        db.flush().unwrap();
    }
    // Simulate a crash that left a half-written vSST behind.
    {
        let mut w = env
            .new_writable("db/999999.vsst", scavenger::IoClass::Other)
            .unwrap();
        w.append(b"partial garbage").unwrap();
        w.sync().unwrap();
    }
    let db = Db::open(opts(env.clone(), EngineMode::Scavenger)).unwrap();
    assert!(
        !Arc::clone(&env).file_exists("db/999999.vsst"),
        "orphan removed during open"
    );
    assert_eq!(db.get("k").unwrap().unwrap().len(), 4096);
}
