//! Pinned `ReadView` / RAII `Snapshot` integration: a view outlives
//! flush + compaction + GC and still reads its epoch; snapshots register
//! and unregister their read points; per-call `ReadOptions` /
//! `WriteOptions` behave as documented.

use scavenger::{Db, EngineMode, MemEnv, Options, ReadOptions, WriteOptions};

fn small_opts(mode: EngineMode) -> Options {
    let mut o = Options::new(MemEnv::shared(), "db", mode);
    o.memtable_size = 8 * 1024;
    o.vsst_target_size = 32 * 1024;
    o.base_level_bytes = 64 * 1024;
    o.ksst_target_size = 16 * 1024;
    o.block_cache_bytes = 256 * 1024;
    o.auto_gc = false;
    o
}

fn value(i: usize, len: usize) -> Vec<u8> {
    let mut v = vec![(i % 251) as u8; len];
    v[0] = (i >> 8) as u8;
    v
}

/// The tentpole guarantee: a view pinned at epoch 0 keeps reading epoch
/// 0 — point gets and scans — after the engine flushes, compacts, and
/// garbage-collects away every structure the epoch lived in.
#[test]
fn view_outlives_flush_compaction_and_gc() {
    for mode in [EngineMode::Scavenger, EngineMode::Terark] {
        let db = Db::open(small_opts(mode)).unwrap();
        for i in 0..60 {
            db.put(format!("key{i:03}"), value(i, 2048)).unwrap();
        }
        db.flush().unwrap();

        let view = db.view();

        // Churn: overwrite everything several times, flush each round,
        // compact (exposing the old values as garbage), then GC.
        for round in 1..=4 {
            for i in 0..60 {
                db.put(format!("key{i:03}"), value(round * 100 + i, 2048))
                    .unwrap();
            }
            db.flush().unwrap();
        }
        db.compact_all().unwrap();
        let jobs = db.run_gc_until_clean().unwrap();
        assert!(jobs > 0, "{mode:?}: GC must actually run for this test");

        // The pinned epoch is fully intact...
        for i in 0..60 {
            assert_eq!(
                view.get(format!("key{i:03}")).unwrap().unwrap(),
                bytes::Bytes::from(value(i, 2048)),
                "{mode:?}: view lost key{i} after flush+compact+GC"
            );
        }
        let mut it = view.scan(b"key", None).unwrap();
        let mut n = 0;
        while let Some(e) = it.next_entry().unwrap() {
            let i: usize = std::str::from_utf8(&e.key[3..]).unwrap().parse().unwrap();
            assert_eq!(e.value, bytes::Bytes::from(value(i, 2048)), "{mode:?}");
            n += 1;
        }
        assert_eq!(n, 60, "{mode:?}: view scan covers the whole epoch");

        // ...while the latest state moved on.
        for i in (0..60).step_by(7) {
            assert_eq!(
                db.get(format!("key{i:03}")).unwrap().unwrap(),
                bytes::Bytes::from(value(400 + i, 2048)),
                "{mode:?}"
            );
        }
    }
}

/// Snapshots are RAII: creating one registers its sequence, dropping it
/// unregisters, and a scan opened from a view stays valid after the view
/// itself is dropped (the iterator owns its own pin).
#[test]
fn snapshot_registers_and_unregisters_on_drop() {
    let db = Db::open(small_opts(EngineMode::Scavenger)).unwrap();
    db.put("a", value(1, 100)).unwrap();
    assert!(db.lsm().snapshot_sequences().is_empty());

    let snap = db.snapshot();
    assert_eq!(db.lsm().snapshot_sequences(), vec![snap.sequence()]);
    let snap2 = db.snapshot();
    assert_eq!(db.lsm().snapshot_sequences().len(), 2);
    drop(snap2);
    assert_eq!(db.lsm().snapshot_sequences(), vec![snap.sequence()]);

    db.put("a", value(2, 100)).unwrap();
    assert_eq!(snap.get("a").unwrap().unwrap(), value(1, 100));

    // An iterator opened from the snapshot's view survives the snapshot.
    let mut it = snap.scan(b"", None).unwrap();
    drop(snap);
    assert!(db.lsm().snapshot_sequences().is_empty());
    let e = it.next_entry().unwrap().unwrap();
    assert_eq!(e.key, b"a");
    assert_eq!(e.value, value(1, 100));
}

/// Transient view pins also register (as pins, not snapshots) and clear
/// on drop — the GC read-point machinery depends on this accounting.
#[test]
fn view_pins_register_as_read_points() {
    let db = Db::open(small_opts(EngineMode::Scavenger)).unwrap();
    db.put("k", value(1, 100)).unwrap();
    assert!(db.lsm().oldest_read_point().is_none());
    let view = db.view();
    assert_eq!(db.lsm().oldest_read_point(), Some(view.sequence()));
    assert!(
        db.lsm().snapshot_sequences().is_empty(),
        "a plain view is a pin, not a snapshot (Titan's gate must not see it)"
    );
    drop(view);
    assert!(db.lsm().oldest_read_point().is_none());
}

/// `ReadOptions`: view/snapshot selection and scan bounds.
#[test]
fn read_options_select_read_point_and_bounds() {
    let db = Db::open(small_opts(EngineMode::Scavenger)).unwrap();
    for i in 0..30 {
        db.put(format!("key{i:02}"), value(i, 600)).unwrap();
    }
    let view = db.view();
    let snap = db.snapshot();
    for i in 0..30 {
        db.put(format!("key{i:02}"), value(100 + i, 600)).unwrap();
    }
    db.flush().unwrap();

    // Latest, at-view, and at-snapshot reads of the same key.
    assert_eq!(
        db.get_with(&ReadOptions::default(), "key07")
            .unwrap()
            .unwrap(),
        value(107, 600)
    );
    assert_eq!(
        db.get_with(&ReadOptions::at_view(&view), "key07")
            .unwrap()
            .unwrap(),
        value(7, 600)
    );
    assert_eq!(
        db.get_with(&ReadOptions::at_snapshot(&snap), "key07")
            .unwrap()
            .unwrap(),
        value(7, 600)
    );

    // Bounded scan through the snapshot (the pin rides in `ReadPin`).
    let opts = ReadOptions {
        lower_bound: Some(b"key10".to_vec()),
        upper_bound: Some(b"key20".to_vec()),
        ..ReadOptions::at_snapshot(&snap)
    };
    let mut it = db.scan_with(&opts).unwrap();
    let entries = it.collect_n(usize::MAX).unwrap();
    assert_eq!(entries.len(), 10);
    for (j, e) in entries.iter().enumerate() {
        assert_eq!(e.key, format!("key{:02}", j + 10).into_bytes());
        assert_eq!(e.value, bytes::Bytes::from(value(j + 10, 600)));
    }
}

/// `fill_cache = false` reads return correct data without growing the
/// block cache.
#[test]
fn read_options_fill_cache_false_bypasses_caches() {
    let db = Db::open(small_opts(EngineMode::Rocks)).unwrap();
    for i in 0..200 {
        db.put(format!("key{i:03}"), value(i, 300)).unwrap();
    }
    db.flush().unwrap();
    db.compact_all().unwrap();

    let cache = db.lsm().block_cache();
    let cold = ReadOptions {
        fill_cache: false,
        ..ReadOptions::default()
    };
    let usage_before = cache.usage();
    for i in 0..200 {
        assert_eq!(
            db.get_with(&cold, format!("key{i:03}")).unwrap().unwrap(),
            value(i, 300)
        );
    }
    assert_eq!(
        cache.usage(),
        usage_before,
        "fill_cache=false reads must not populate the block cache"
    );
    // Scans too — including the L1+ levels the data compacted into.
    let mut it = db.scan_with(&cold).unwrap();
    let entries = it.collect_n(usize::MAX).unwrap();
    assert_eq!(entries.len(), 200);
    assert_eq!(
        cache.usage(),
        usage_before,
        "fill_cache=false scans must not populate the block cache at any level"
    );

    // The default path does warm the cache.
    for i in 0..200 {
        db.get(format!("key{i:03}")).unwrap().unwrap();
    }
    assert!(cache.usage() > usage_before, "default reads fill the cache");
}

/// `WriteOptions::disable_throttle` bypasses space-aware admission:
/// writes land even while the store is over its limit, with no throttle
/// activations.
#[test]
fn write_options_disable_throttle_skips_admission_control() {
    let mut o = small_opts(EngineMode::Scavenger);
    o.space_limit = Some(200 * 1024);
    let db = Db::open(o).unwrap();
    let unthrottled = WriteOptions {
        disable_throttle: true,
        ..WriteOptions::default()
    };
    // ~1 MiB of separated values: far over the 200 KiB quota.
    for round in 0..8 {
        for i in 0..32 {
            db.put_with(&unthrottled, format!("key{i:02}"), value(round + i, 4096))
                .unwrap();
        }
    }
    db.flush().unwrap();
    assert_eq!(
        db.stats().throttle_stalls,
        0,
        "disable_throttle writes must never activate the throttle"
    );
    assert!(
        db.space().total() > 200 * 1024,
        "space ran past the limit because admission control was bypassed"
    );
    // Data is intact.
    for i in 0..32 {
        assert_eq!(
            db.get(format!("key{i:02}")).unwrap().unwrap(),
            bytes::Bytes::from(value(7 + i, 4096))
        );
    }
}

/// `WriteOptions::sync = false` writes are acknowledged without a WAL
/// fsync but remain readable and flushable.
#[test]
fn write_options_nosync_writes_round_trip() {
    let db = Db::open(small_opts(EngineMode::Scavenger)).unwrap();
    let nosync = WriteOptions {
        sync: false,
        ..WriteOptions::default()
    };
    for i in 0..50 {
        db.put_with(&nosync, format!("key{i:02}"), value(i, 1024))
            .unwrap();
    }
    for i in 0..50 {
        assert_eq!(
            db.get(format!("key{i:02}")).unwrap().unwrap(),
            value(i, 1024)
        );
    }
    db.flush().unwrap();
    assert_eq!(db.get("key07").unwrap().unwrap(), value(7, 1024));
}

/// BlobDB relocates values inside compaction *without advancing the
/// sequence*, so exhausted-file reaping must defer while any read point
/// is registered at all — a pinned view may hold a pre-relocation
/// superversion whose index entries still address the exhausted file.
#[test]
fn blobdb_defers_exhausted_reaping_under_pinned_view() {
    let mut o = small_opts(EngineMode::BlobDb);
    o.auto_gc = true; // reaping runs on the write path
    let db = Db::open(o).unwrap();
    for i in 0..40 {
        db.put(format!("key{i:02}"), value(i, 2048)).unwrap();
    }
    db.flush().unwrap();

    let view = db.view();

    // Churn + compact repeatedly: compaction-triggered relocation drains
    // the old blob files until they exhaust; the write path then tries
    // to reap them on every put.
    for round in 1..=12 {
        for i in 0..40 {
            db.put(format!("key{i:02}"), value(round * 50 + i, 2048))
                .unwrap();
        }
        db.flush().unwrap();
        db.compact_all().unwrap();
    }

    // Strict: the pinned view still reads every epoch-0 value, whether
    // or not its blob files have exhausted in the meantime.
    for i in 0..40 {
        assert_eq!(
            view.get(format!("key{i:02}")).unwrap().unwrap(),
            bytes::Bytes::from(value(i, 2048)),
            "pinned view must survive BlobDB relocation + reaping"
        );
    }
    drop(view);

    // The riskiest window: a view pinned with NO writes afterwards, then
    // compactions that relocate records (and reap on their maintenance
    // pass) without ever advancing the sequence. A sequence-based gate
    // cannot tell this reader from a safe one — only defer-on-any-pin
    // protects it.
    let late_view = db.view();
    for _ in 0..3 {
        db.compact_all().unwrap();
        db.flush().unwrap();
    }
    for i in 0..40 {
        assert_eq!(
            late_view.get(format!("key{i:02}")).unwrap().unwrap(),
            bytes::Bytes::from(value(600 + i, 2048)),
            "view pinned across write-free compactions must stay resolvable"
        );
    }
    drop(late_view);

    // With no read points left, a write-path pass may reap exhausted
    // files; the latest state stays fully readable either way.
    db.put("poke", value(0, 600)).unwrap();
    db.flush().unwrap();
    for i in 0..40 {
        assert_eq!(
            db.get(format!("key{i:02}")).unwrap().unwrap(),
            bytes::Bytes::from(value(600 + i, 2048))
        );
    }
}

/// Titan (write-back GC) cannot preserve superseded versions through
/// inheritance, so collected blob files are deleted *deferred*: a view
/// pinned below the write-back barrier keeps reading relocated records
/// through the old file; once the view drops, the next GC pass reaps it.
///
/// The scenario: keys 0..10 stay live in blob files whose *other*
/// records (keys 10..40, overwritten and exposed by compaction before
/// the view existed) push the garbage ratio over the GC threshold. The
/// GC rewrites the live records and write-back re-points the index — but
/// the pinned view, below that barrier, still resolves them through the
/// old addresses.
#[test]
fn titan_defers_blob_deletion_under_pinned_view() {
    let db = Db::open(small_opts(EngineMode::Titan)).unwrap();
    for i in 0..40 {
        db.put(format!("key{i:02}"), value(i, 2048)).unwrap();
    }
    db.flush().unwrap();
    let old_files: Vec<u64> = db
        .value_store()
        .all_files()
        .iter()
        .map(|m| m.file)
        .collect();
    assert!(!old_files.is_empty());

    // Expose most of the old records as garbage *before* pinning, so the
    // files are GC candidates despite the live remainder.
    for i in 10..40 {
        db.put(format!("key{i:02}"), value(500 + i, 2048)).unwrap();
    }
    db.flush().unwrap();
    db.compact_all().unwrap();

    // The files the GC will actually collect: garbage ratio over the
    // default 0.2 threshold. (Old files holding only still-live records
    // stay below it and legitimately survive GC.)
    let candidates: Vec<u64> = db
        .value_store()
        .all_files()
        .iter()
        .filter(|m| old_files.contains(&m.file) && m.garbage_ratio() >= 0.2)
        .map(|m| m.file)
        .collect();
    assert!(!candidates.is_empty(), "setup must create GC candidates");
    // Candidates still holding live records force a write-back: their
    // barrier lands *above* the view, so deletion must defer. (Fully-dead
    // candidates have nothing to write back and may be reaped at once —
    // no read point can resolve into them.)
    let mixed: Vec<u64> = db
        .value_store()
        .all_files()
        .iter()
        .filter(|m| candidates.contains(&m.file) && m.garbage_ratio() < 1.0)
        .map(|m| m.file)
        .collect();
    assert!(
        !mixed.is_empty(),
        "setup must create mixed live/dead candidates"
    );

    let view = db.view();
    let jobs = db.run_gc_until_clean().unwrap();
    assert!(jobs > 0, "write-back GC must collect the exposed files");

    // The view predates the write-back barrier: its index entries for
    // keys 0..10 still address the collected files, which therefore must
    // linger (deferred) and keep resolving.
    assert!(
        mixed.iter().all(|f| db.value_store().meta(*f).is_some()),
        "collected blob files must linger while a read point predates the barrier"
    );
    for i in 0..10 {
        assert_eq!(
            view.get(format!("key{i:02}")).unwrap().unwrap(),
            bytes::Bytes::from(value(i, 2048)),
            "view must survive Titan GC via deferred deletion"
        );
    }

    drop(view);
    // With the pin gone, the next GC pass reaps the deferred files.
    db.run_gc_until_clean().unwrap();
    assert!(
        candidates
            .iter()
            .all(|f| db.value_store().meta(*f).is_none()),
        "deferred blob files must be reaped once no read point needs them"
    );
    // Live records were relocated and written back; everything reads.
    for i in 0..40 {
        let want = if i < 10 {
            value(i, 2048)
        } else {
            value(500 + i, 2048)
        };
        assert_eq!(
            db.get(format!("key{i:02}")).unwrap().unwrap(),
            bytes::Bytes::from(want)
        );
    }
}
