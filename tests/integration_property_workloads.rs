//! Property-based end-to-end testing: random operation sequences applied
//! both to a Scavenger database and to a model (`BTreeMap`); the two must
//! agree at every step, across flushes, compactions, GC, and reopen.

use proptest::prelude::*;
use scavenger::{Db, EngineMode, MemEnv, Options};
use scavenger_env::EnvRef;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u16),
    Delete(u8),
    Flush,
    Compact,
    Gc,
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u8>(), 1u16..3000).prop_map(|(k, len)| Op::Put(k, len)),
        2 => any::<u8>().prop_map(Op::Delete),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
        1 => Just(Op::Gc),
        1 => Just(Op::Reopen),
    ]
}

fn opts(env: EnvRef, mode: EngineMode) -> Options {
    let mut o = Options::new(env, "db", mode);
    o.memtable_size = 16 * 1024;
    o.base_level_bytes = 64 * 1024;
    o.vsst_target_size = 64 * 1024;
    o
}

fn value_for(k: u8, len: u16, gen: u32) -> Vec<u8> {
    let mut v = vec![k; len as usize];
    if v.len() >= 4 {
        v[..4].copy_from_slice(&gen.to_le_bytes());
    }
    v
}

fn check_model(db: &Db, model: &BTreeMap<Vec<u8>, Vec<u8>>) {
    // Point reads agree for every key ever touched.
    for (k, v) in model {
        let got = db.get(k).unwrap();
        assert_eq!(got.as_deref(), Some(v.as_slice()), "key {k:?}");
    }
    // A full scan agrees with the model.
    let mut it = db.scan(b"", None).unwrap();
    let mut scanned = Vec::new();
    while let Some(e) = it.next_entry().unwrap() {
        scanned.push((e.key, e.value.to_vec()));
    }
    let expected: Vec<(Vec<u8>, Vec<u8>)> =
        model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(scanned, expected, "scan mismatch");
}

fn run_ops(mode: EngineMode, ops: &[Op]) {
    let env: EnvRef = MemEnv::shared();
    let mut db = Db::open(opts(env.clone(), mode)).unwrap();
    let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    let mut gen = 0u32;
    for op in ops {
        match op {
            Op::Put(k, len) => {
                gen += 1;
                let key = format!("key{k:03}").into_bytes();
                let val = value_for(*k, *len, gen);
                db.put(&key, val.clone()).unwrap();
                model.insert(key, val);
            }
            Op::Delete(k) => {
                let key = format!("key{k:03}").into_bytes();
                db.delete(&key).unwrap();
                model.remove(&key);
            }
            Op::Flush => db.flush().unwrap(),
            Op::Compact => db.compact_all().unwrap(),
            Op::Gc => {
                db.run_gc_until_clean().unwrap();
            }
            Op::Reopen => {
                drop(db);
                db = Db::open(opts(env.clone(), mode)).unwrap();
            }
        }
    }
    check_model(&db, &model);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case is a full DB lifecycle; keep CI time sane
        max_shrink_iters: 64,
        .. ProptestConfig::default()
    })]

    #[test]
    fn scavenger_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        run_ops(EngineMode::Scavenger, &ops);
    }

    #[test]
    fn terark_matches_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        run_ops(EngineMode::Terark, &ops);
    }

    #[test]
    fn titan_matches_model(ops in proptest::collection::vec(op_strategy(), 1..100)) {
        run_ops(EngineMode::Titan, &ops);
    }

    #[test]
    fn blobdb_matches_model(ops in proptest::collection::vec(op_strategy(), 1..100)) {
        run_ops(EngineMode::BlobDb, &ops);
    }

    #[test]
    fn rocks_matches_model(ops in proptest::collection::vec(op_strategy(), 1..100)) {
        run_ops(EngineMode::Rocks, &ops);
    }
}
