//! Crash-recovery property harness: seeded random workloads against
//! both engine handles under fault injection.
//!
//! Each cycle wraps a fresh store in a [`FaultEnv`], drives a seeded op
//! sequence ([`scavenger_workload::crash`]), crashes at an injected
//! point (an op-count fuse on even cycles; a targeted power-loss rule
//! on WAL/manifest/SST/value-file I/O on odd cycles), reopens on the
//! surviving bytes, and checks:
//!
//! * reopen always succeeds — recovery never wedges on a torn tail;
//! * every synced acknowledged write (and everything older than the
//!   last acknowledged flush) survived;
//! * nothing partially applied or reordered is visible: the recovered
//!   state is a prefix of the op sequence (single `Db`) or per-key
//!   prefix-consistent (`DbShards`, whose shards persist WALs
//!   independently);
//! * the workload can resume on the reopened store and lands exactly
//!   on the model state.
//!
//! Cycle count and base seed come from `CRASH_CYCLES` / `CRASH_SEED`
//! (defaults: 200 cycles per engine × mode combination, seed
//! `0xdecaf`), so CI can pin seeds and crank coverage.

use scavenger::{
    Db, DbShards, Engine, EngineMode, KvRead, Maintenance, MemEnv, Options, ShardedOptions,
    WriteOptions,
};
use scavenger_env::{EnvRef, FaultEnv, FaultKind, FaultOp, FaultRule, Trigger};
use scavenger_workload::crash::{self, CrashOp, Model};
use std::sync::Arc;

fn cycles() -> u64 {
    std::env::var("CRASH_CYCLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200)
}

fn base_seed() -> u64 {
    std::env::var("CRASH_SEED")
        .ok()
        .and_then(|s| match s.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16).ok(),
            None => s.parse().ok(),
        })
        .unwrap_or(0xdecaf)
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Small-file options so 60 ops cross flush/compaction/GC boundaries.
fn small_opts(env: EnvRef, mode: EngineMode) -> Options {
    let mut o = Options::new(env, "db", mode);
    o.memtable_size = 16 * 1024;
    o.base_level_bytes = 64 * 1024;
    o.vsst_target_size = 32 * 1024;
    o.bg_retry_limit = 1;
    o.bg_retry_base = std::time::Duration::from_millis(1);
    o
}

fn open_single(env: EnvRef, mode: EngineMode) -> scavenger::Result<Db> {
    Db::open(small_opts(env, mode))
}

fn open_sharded(env: EnvRef, mode: EngineMode) -> scavenger::Result<DbShards> {
    let mut so = ShardedOptions::new(env.clone(), "db", mode);
    so.base = small_opts(env, mode);
    so.num_shards = 4;
    DbShards::open(so)
}

fn apply_op<E: Engine>(db: &E, op: &CrashOp) -> scavenger::Result<()> {
    match *op {
        CrashOp::Put {
            key,
            stamp,
            len,
            sync,
        } => db
            .put_with(
                &WriteOptions {
                    sync,
                    ..Default::default()
                },
                &crash::key_bytes(key),
                crash::value_bytes(key, stamp, len).into(),
            )
            .map(|_| ()),
        CrashOp::Delete { key, sync } => db
            .delete_with(
                &WriteOptions {
                    sync,
                    ..Default::default()
                },
                &crash::key_bytes(key),
            )
            .map(|_| ()),
        CrashOp::Flush => db.flush(),
        CrashOp::Gc => db.run_gc().map(|_| ()),
        CrashOp::TxnBatch { keys, stamp, len } => {
            let mut batch = scavenger::WriteBatch::new();
            for k in keys {
                batch.put(
                    crash::txn_key_bytes(k),
                    bytes::Bytes::from(crash::value_bytes(k, stamp, len)),
                );
            }
            db.write_with(
                &WriteOptions {
                    sync: true,
                    ..Default::default()
                },
                batch,
            )
            .map(|_| ())
        }
    }
}

fn recovered_model<E: Engine>(db: &E, ctx: &str) -> Model {
    let mut m = Model::new();
    for entry in db
        .scan(b"", None)
        .unwrap_or_else(|e| panic!("{ctx}: scan failed after recovery: {e}"))
    {
        let e = entry.unwrap_or_else(|e| panic!("{ctx}: scan entry failed after recovery: {e}"));
        m.insert(e.key.clone(), e.value.to_vec());
    }
    m
}

/// Crash points targeted on odd cycles: power loss on the n-th matching
/// I/O op. Covers the WAL append/sync path, manifest writes, flush
/// (key-SST) writes, and the GC/flush value-file writes of every
/// format.
const CRASH_POINTS: &[(FaultOp, &str)] = &[
    (FaultOp::Write, ".log"),
    (FaultOp::Sync, ".log"),
    (FaultOp::Write, "MANIFEST"),
    (FaultOp::Sync, "MANIFEST"),
    (FaultOp::Write, ".sst"),
    (FaultOp::Sync, ".sst"),
    (FaultOp::Write, ".vsst"),
    (FaultOp::Write, ".blob"),
    (FaultOp::Rename, "CURRENT"),
    // 2PC coordinator log (sharded handle only; no-op on a single Db,
    // where the op-count fuse still forces a crash): power loss while
    // appending a Prepare/Commit record and during the prepare fsync.
    (FaultOp::Write, "COORD"),
    (FaultOp::Sync, "COORD"),
];

fn run_cycle<E: Engine, O: Fn(EnvRef) -> scavenger::Result<E>>(
    open: &O,
    per_key_only: bool,
    seed: u64,
    cycle: u64,
    label: &str,
) {
    let ctx = format!("{label} seed={seed} cycle={cycle}");
    let mut rng = seed ^ cycle.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let fault = FaultEnv::wrap(MemEnv::shared(), seed ^ cycle);
    let env: EnvRef = fault.clone();

    let ops = crash::gen_ops(seed ^ cycle, 60, 48);
    let db = open(env.clone()).unwrap_or_else(|e| panic!("{ctx}: clean open failed: {e}"));

    // Arm the crash point *after* open so the store always starts whole.
    if cycle.is_multiple_of(2) {
        fault.crash_after_ops(40 + splitmix64(&mut rng) % 600);
    } else {
        let (op, pat) = CRASH_POINTS[(splitmix64(&mut rng) as usize) % CRASH_POINTS.len()];
        fault.add_rule(FaultRule {
            op,
            path_contains: Some(pat.to_string()),
            trigger: Trigger::Nth(1 + splitmix64(&mut rng) % 8),
            kind: FaultKind::Crash,
            one_shot: true,
        });
    }

    let mut acked = 0usize;
    let mut failed = false;
    for op in &ops {
        match apply_op(&db, op) {
            Ok(()) => acked += 1,
            Err(_) => {
                failed = true;
                break;
            }
        }
    }
    // The op that observed the error may have partially landed; nothing
    // beyond it ran.
    let attempted = if failed { acked + 1 } else { acked };
    if !fault.crashed() {
        // The armed point never fired (or all ops survived it): force
        // power loss now so every cycle exercises recovery.
        fault.crash();
    }
    drop(db);
    fault.heal();

    let db = open(env.clone()).unwrap_or_else(|e| panic!("{ctx}: reopen after crash failed: {e}"));
    let recovered = recovered_model(&db, &ctx);
    let floor = crash::durable_floor(&ops, acked);
    // All-or-nothing: no crash point — including mid-2PC on the sharded
    // handle — may surface a partially applied txn batch.
    crash::check_txn_atomic(&recovered, &ops, acked, attempted)
        .unwrap_or_else(|e| panic!("{ctx}: txn batch atomicity violated: {e}"));
    let matched = if per_key_only {
        crash::check_per_key_consistent(&recovered, &ops, acked, attempted)
            .unwrap_or_else(|e| panic!("{ctx}: per-key consistency violated: {e}"));
        None
    } else {
        Some(
            crash::check_prefix_consistent(&recovered, &ops, floor, attempted)
                .unwrap_or_else(|e| panic!("{ctx}: prefix consistency violated: {e}")),
        )
    };

    // The store must accept and persist new work after recovery.
    let more = crash::gen_ops(seed ^ cycle ^ 0xab1e, 15, 48);
    for op in &more {
        apply_op(&db, op).unwrap_or_else(|e| panic!("{ctx}: post-recovery op failed: {e}"));
    }
    let mut expect = match matched {
        Some(k) => crash::apply_ops(&ops[..k]),
        None => recovered.clone(),
    };
    crash::apply_more(&mut expect, &more);
    let after = recovered_model(&db, &ctx);
    assert_eq!(after, expect, "{ctx}: post-recovery state diverged");
}

fn drive_single(mode: EngineMode) {
    let seed = base_seed();
    for cycle in 0..cycles() {
        run_cycle(
            &|env| open_single(env, mode),
            false,
            seed,
            cycle,
            &format!("Db/{mode:?}"),
        );
    }
}

fn drive_sharded(mode: EngineMode) {
    let seed = base_seed();
    for cycle in 0..cycles() {
        run_cycle(
            &|env| open_sharded(env, mode),
            true,
            seed,
            cycle,
            &format!("DbShards/{mode:?}"),
        );
    }
}

#[test]
fn crash_recovery_db_scavenger() {
    drive_single(EngineMode::Scavenger);
}

#[test]
fn crash_recovery_db_titan() {
    drive_single(EngineMode::Titan);
}

#[test]
fn crash_recovery_db_terark() {
    drive_single(EngineMode::Terark);
}

#[test]
fn crash_recovery_shards_scavenger() {
    drive_sharded(EngineMode::Scavenger);
}

#[test]
fn crash_recovery_shards_titan() {
    drive_sharded(EngineMode::Titan);
}

#[test]
fn crash_recovery_shards_terark() {
    drive_sharded(EngineMode::Terark);
}

/// A permanent background failure degrades the engine to read-only —
/// reads and scans keep working, writes fail fast with a typed error —
/// and `resume()` restores write availability once the fault clears.
#[test]
fn degraded_mode_serves_reads_and_resume_restores_writes() {
    let fault = FaultEnv::wrap(MemEnv::shared(), 0xfee1);
    let env: EnvRef = fault.clone();
    let db = open_single(env, EngineMode::Scavenger).unwrap();
    for i in 0..40u32 {
        db.put(crash::key_bytes(i), crash::value_bytes(i, 1, 700))
            .unwrap();
    }
    db.flush().unwrap();

    // Every key-SST write now fails: the next flush exhausts its
    // retries and degrades the engine.
    fault.add_rule(FaultRule {
        op: FaultOp::Write,
        path_contains: Some(".sst".to_string()),
        trigger: Trigger::Always,
        kind: FaultKind::Fail,
        one_shot: false,
    });
    for i in 40..80u32 {
        let _ = db.put(crash::key_bytes(i), crash::value_bytes(i, 1, 700));
    }
    let err = db.flush().expect_err("flush must fail under the fault");
    assert!(
        matches!(
            err,
            scavenger::Error::Io(_) | scavenger::Error::ReadOnlyMode(_)
        ),
        "unexpected error class: {err}"
    );
    assert!(db.is_degraded(), "engine must be degraded after retries");
    let stats = db.stats();
    assert!(stats.degraded);
    assert!(
        stats.bg_errors >= 1,
        "bg_errors gauge must count the failure"
    );
    assert!(stats.bg_retries >= 1, "transient failure must be retried");

    // Writes fail fast with the typed error; reads and scans still work.
    let werr = db
        .put(crash::key_bytes(0), crash::value_bytes(0, 2, 700))
        .expect_err("writes must fail in degraded mode");
    assert!(werr.is_read_only(), "got {werr}");
    assert!(db.background_error().is_some());
    assert_eq!(
        db.get(crash::key_bytes(5)).unwrap().unwrap(),
        bytes::Bytes::from(crash::value_bytes(5, 1, 700))
    );
    assert!(db.scan(b"", None).unwrap().count() >= 40);

    // Clear the fault; resume re-verifies the manifest and re-enables
    // writes.
    fault.clear_rules();
    db.resume().expect("resume after the fault cleared");
    assert!(!db.is_degraded());
    assert!(db.background_error().is_none());
    db.put(crash::key_bytes(0), crash::value_bytes(0, 3, 700))
        .unwrap();
    db.flush().unwrap();
    assert_eq!(
        db.get(crash::key_bytes(0)).unwrap().unwrap(),
        bytes::Bytes::from(crash::value_bytes(0, 3, 700))
    );
}

/// Same availability contract on the sharded handle, driven through the
/// unified `Maintenance` trait (`resume` is part of the engine
/// surface).
#[test]
fn degraded_shard_set_resumes_through_the_trait() {
    let fault = FaultEnv::wrap(MemEnv::shared(), 0xfee2);
    let env: EnvRef = fault.clone();
    let db = open_sharded(env, EngineMode::Scavenger).unwrap();
    for i in 0..60u32 {
        db.put(crash::key_bytes(i), crash::value_bytes(i, 1, 700))
            .unwrap();
    }
    Maintenance::flush(&db).unwrap();

    fault.add_rule(FaultRule {
        op: FaultOp::Write,
        path_contains: Some(".sst".to_string()),
        trigger: Trigger::Always,
        kind: FaultKind::Fail,
        one_shot: false,
    });
    for i in 60..120u32 {
        let _ = db.put(crash::key_bytes(i), crash::value_bytes(i, 1, 700));
    }
    let _ = Maintenance::flush(&db).expect_err("flush must fail under the fault");
    assert!(db.is_degraded(), "at least one shard must be degraded");
    assert!(db.stats().degraded, "aggregate stats OR the shard gauges");
    // Reads still served (possibly minus the unsynced tail on the
    // degraded shard — but everything flushed earlier is there).
    assert!(KvRead::scan(&db, b"", None).unwrap().count() >= 60);

    fault.clear_rules();
    let maint: &dyn Maintenance = &db;
    maint.resume().expect("trait resume clears every shard");
    assert!(!db.is_degraded());
    db.put(crash::key_bytes(0), crash::value_bytes(0, 9, 700))
        .unwrap();
    Maintenance::flush(&db).unwrap();
}

/// `heal()` without `crash()` must be a no-op on durability: a fault
/// env wrapped store that never crashes recovers everything, synced or
/// not (sanity check that the harness itself doesn't lose data).
#[test]
fn no_crash_cycle_loses_nothing() {
    let fault = FaultEnv::wrap(MemEnv::shared(), 0x900d);
    let env: EnvRef = fault.clone();
    let ops = crash::gen_ops(0x900d, 80, 32);
    {
        let db = open_single(env.clone(), EngineMode::Scavenger).unwrap();
        for op in &ops {
            apply_op(&db, op).unwrap();
        }
    }
    let db = open_single(env, EngineMode::Scavenger).unwrap();
    let recovered = recovered_model(&db, "no-crash");
    assert_eq!(recovered, crash::apply_ops(&ops));
    let _ = Arc::clone(&fault); // keep the env alive to the end
}
