//! Multicore optimistic-transaction stress: N threads hammer a small
//! hot key set with read-modify-write transactions (retrying on
//! conflict), on both engine handles.
//!
//! Every transaction reads two counters and writes both back
//! incremented, so OCC validation makes the committed history
//! serializable and every serial order produces the same state: the
//! final counters must equal a sequential re-execution of exactly the
//! committed records — nothing lost, nothing double-applied, no torn
//! multi-key commits. The typed counters must agree with the client's
//! own bookkeeping: `txn_commits` == committed transactions,
//! `txn_conflicts` == observed retries, and on the sharded handle the
//! cross-shard commits show up in `txn_2pc_commits`.
//!
//! Thread and iteration counts scale down under `TXN_STRESS_LIGHT=1`
//! so the suite stays quick in smoke runs; CI's multicore job runs the
//! full shape.

use scavenger::{Engine, EngineMode, MemEnv, Options, ShardedOptions, Transactional};
use std::collections::BTreeMap;

const KEYS: u32 = 8;

fn threads() -> usize {
    if std::env::var("TXN_STRESS_LIGHT").is_ok() {
        2
    } else {
        4
    }
}

fn txns_per_thread() -> usize {
    if std::env::var("TXN_STRESS_LIGHT").is_ok() {
        50
    } else {
        150
    }
}

fn key(k: u32) -> Vec<u8> {
    format!("ctr{k:02}").into_bytes()
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn decode(v: &[u8]) -> u64 {
    u64::from_le_bytes(v.try_into().expect("8-byte counter"))
}

/// One worker: commit `n` increment transactions, retrying each until
/// it validates. Returns the committed `(key_a, key_b)` records and
/// the number of conflicted (retried) commit attempts.
fn worker<E: Engine + Transactional>(db: &E, seed: u64, n: usize) -> (Vec<(u32, u32)>, u64) {
    let mut rng = seed;
    let mut committed = Vec::with_capacity(n);
    let mut retries = 0u64;
    for _ in 0..n {
        let a = (splitmix64(&mut rng) % u64::from(KEYS)) as u32;
        let mut b = (splitmix64(&mut rng) % u64::from(KEYS)) as u32;
        if b == a {
            b = (b + 1) % KEYS;
        }
        loop {
            let mut t = db.begin();
            let va = decode(&t.get(key(a)).unwrap().expect("counter seeded"));
            let vb = decode(&t.get(key(b)).unwrap().expect("counter seeded"));
            t.put(key(a), (va + 1).to_le_bytes().to_vec());
            t.put(key(b), (vb + 1).to_le_bytes().to_vec());
            match t.commit() {
                Ok(_) => break,
                Err(e) if e.is_txn_conflict() => retries += 1,
                Err(e) => panic!("non-conflict commit failure: {e}"),
            }
        }
        committed.push((a, b));
    }
    (committed, retries)
}

fn stress<E: Engine + Transactional + Send + Sync>(db: &E, label: &str) -> (u64, u64) {
    for k in 0..KEYS {
        db.put(&key(k), 0u64.to_le_bytes().to_vec().into()).unwrap();
    }
    let base = db.stats();

    let (records, retries): (Vec<Vec<(u32, u32)>>, Vec<u64>) = std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads())
            .map(|t| {
                let db = db.clone();
                let n = txns_per_thread();
                s.spawn(move || worker(&db, 0x7a17 ^ (t as u64) << 32, n))
            })
            .collect();
        workers.into_iter().map(|w| w.join().unwrap()).unzip()
    });

    // Sequential re-execution oracle: replay exactly the committed
    // records one by one (increments commute, so every serial order —
    // in particular the OCC commit order — yields this state) and the
    // store must land on it.
    let mut model: BTreeMap<u32, u64> = (0..KEYS).map(|k| (k, 0)).collect();
    for (a, b) in records.iter().flatten() {
        *model.get_mut(a).unwrap() += 1;
        *model.get_mut(b).unwrap() += 1;
    }
    for (k, expect) in &model {
        let got = decode(&db.get(&key(*k)).unwrap().expect("counter present"));
        assert_eq!(
            got, *expect,
            "{label}: counter {k} diverged from sequential re-execution"
        );
    }
    let total: u64 = model.values().sum();
    assert_eq!(
        total,
        2 * (threads() * txns_per_thread()) as u64,
        "{label}: committed transaction count wrong"
    );

    // The typed counters must match the client-side bookkeeping.
    let stats = db.stats();
    let commits = stats.txn_commits - base.txn_commits;
    let conflicts = stats.txn_conflicts - base.txn_conflicts;
    assert_eq!(
        commits,
        (threads() * txns_per_thread()) as u64,
        "{label}: txn_commits must count every committed transaction"
    );
    assert_eq!(
        conflicts,
        retries.iter().sum::<u64>(),
        "{label}: txn_conflicts must count exactly the observed retries"
    );
    (conflicts, stats.txn_2pc_commits - base.txn_2pc_commits)
}

/// A deterministic interleaving that must conflict, so the suite never
/// passes vacuously on a machine where the stress threads happened to
/// serialize.
fn forced_conflict<E: Engine + Transactional>(db: &E, label: &str) {
    let before = db.stats().txn_conflicts;
    let mut t1 = db.begin();
    let v = decode(&t1.get(key(0)).unwrap().expect("counter seeded"));
    let mut t2 = db.begin();
    let v2 = decode(&t2.get(key(0)).unwrap().expect("counter seeded"));
    t2.put(key(0), (v2 + 1).to_le_bytes().to_vec());
    t2.commit().unwrap();
    t1.put(key(0), (v + 1).to_le_bytes().to_vec());
    let err = t1.commit().expect_err("stale read must abort");
    assert!(err.is_txn_conflict(), "{label}: wrong error class: {err}");
    assert_eq!(
        db.stats().txn_conflicts,
        before + 1,
        "{label}: forced conflict not counted"
    );
}

#[test]
fn txn_stress_single_db() {
    let db = Options::builder(MemEnv::shared(), "txn-stress-db", EngineMode::Scavenger)
        .open()
        .unwrap();
    let (_, twopc) = stress(&db, "Db");
    assert_eq!(twopc, 0, "a single Db never needs the 2PC coordinator");
    forced_conflict(&db, "Db");
}

#[test]
fn txn_stress_4shard_dbshards() {
    let db = ShardedOptions::builder(MemEnv::shared(), "txn-stress-shards", EngineMode::Scavenger)
        .num_shards(4)
        .open()
        .unwrap();
    let (_, twopc) = stress(&db, "DbShards");
    assert!(
        twopc > 0,
        "two-key transactions over 4 shards must exercise 2PC"
    );
    forced_conflict(&db, "DbShards");
}
