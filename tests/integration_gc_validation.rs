//! GC validation-mode equivalence: the point-lookup baseline, the
//! merge-validate sweep, and the parallel worker pool must be
//! observationally identical — same `GcOutcome` for every job, same
//! surviving record set — under overwrites, deletes, snapshots pinning
//! old versions, and inheritance chains built by repeated GC.

use scavenger::{Db, EngineMode, GcOutcome, GcValidateMode, MemEnv, Options};
use scavenger_env::EnvRef;

fn opts(env: EnvRef, mode: EngineMode, validate: GcValidateMode) -> Options {
    let mut o = Options::new(env, "db", mode);
    o.memtable_size = 8 * 1024;
    o.vsst_target_size = 32 * 1024;
    o.base_level_bytes = 64 * 1024;
    o.ksst_target_size = 16 * 1024;
    o.auto_gc = false;
    o.gc_validate_mode = validate;
    o.gc_threads = 4;
    o
}

fn value(i: usize, len: usize) -> Vec<u8> {
    let mut v = vec![(i % 251) as u8; len];
    v[0] = (i >> 8) as u8;
    v
}

/// `(key, latest value, snapshot view)` for one surviving record.
type Survivor = (Vec<u8>, Vec<u8>, Option<Vec<u8>>);

/// The full engine-observable state a read can distinguish: every live
/// `(key, value)` pair via scan, plus the snapshot's view of every key.
fn surviving_records(db: &Db, snap: Option<&scavenger::Snapshot>) -> Vec<Survivor> {
    let mut out = Vec::new();
    let mut it = db.scan(b"", None).unwrap();
    while let Some(e) = it.next_entry().unwrap() {
        // Pinned read through the snapshot when one is held; the latest
        // state otherwise (nothing writes concurrently here).
        let snap_view = match snap {
            Some(s) => db
                .get_with(&scavenger::ReadOptions::pinned(s), &e.key)
                .unwrap(),
            None => db.get(&e.key).unwrap(),
        }
        .map(|b| b.to_vec());
        out.push((e.key, e.value.to_vec(), snap_view));
    }
    out
}

/// Drive one full workload under `validate`: load, overwrite (hot skew),
/// delete, snapshot-pin, then GC to a fixed point — twice, so the second
/// round validates records that already live behind inheritance edges.
/// Returns (job outcomes, surviving records).
fn run_workload(mode: EngineMode, validate: GcValidateMode) -> (Vec<GcOutcome>, Vec<Survivor>) {
    let env: EnvRef = MemEnv::shared();
    let db = Db::open(opts(env, mode, validate)).unwrap();

    // Load.
    for i in 0..120 {
        db.put(format!("key{i:03}"), value(i, 2048)).unwrap();
    }
    db.flush().unwrap();
    // Snapshot pins the loaded versions. Titan defers GC entirely while
    // snapshots exist, so only the no-writeback schemes hold one through
    // the GC waves.
    let snap = (mode != EngineMode::Titan).then(|| db.snapshot());
    // Overwrites: hot head of the keyspace, several rounds.
    for round in 1..=3 {
        for i in 0..60 {
            db.put(format!("key{i:03}"), value(round * 1000 + i, 2048))
                .unwrap();
        }
        db.flush().unwrap();
    }
    // Deletes.
    for i in (90..120).step_by(2) {
        db.delete(format!("key{i:03}")).unwrap();
    }
    db.flush().unwrap();
    db.compact_all().unwrap();

    // First GC wave: collects original files, building inheritance edges.
    let mut outcomes = Vec::new();
    while let Some(out) = db.run_gc_at(0.05).unwrap() {
        outcomes.push(out);
        assert!(outcomes.len() < 256, "runaway GC");
    }
    // More churn on top of GC outputs, then a second wave so validation
    // must resolve through inheritance chains.
    for i in 0..40 {
        db.put(format!("key{i:03}"), value(7000 + i, 2048)).unwrap();
    }
    db.flush().unwrap();
    db.compact_all().unwrap();
    while let Some(out) = db.run_gc_at(0.05).unwrap() {
        outcomes.push(out);
        assert!(outcomes.len() < 256, "runaway GC");
    }

    let survivors = surviving_records(&db, snap.as_ref());
    drop(snap);
    (outcomes, survivors)
}

fn assert_modes_equivalent(mode: EngineMode) {
    let (base_outcomes, base_survivors) = run_workload(mode, GcValidateMode::Point);
    assert!(
        !base_outcomes.is_empty(),
        "{mode:?}: workload must trigger GC jobs"
    );
    for validate in [GcValidateMode::Merge, GcValidateMode::Parallel] {
        let (outcomes, survivors) = run_workload(mode, validate);
        assert_eq!(
            base_outcomes, outcomes,
            "{mode:?}: {validate:?} GcOutcome sequence diverged from Point"
        );
        assert_eq!(
            base_survivors, survivors,
            "{mode:?}: {validate:?} surviving record set diverged from Point"
        );
    }
}

#[test]
fn scavenger_validation_modes_equivalent() {
    assert_modes_equivalent(EngineMode::Scavenger);
}

#[test]
fn terark_validation_modes_equivalent() {
    assert_modes_equivalent(EngineMode::Terark);
}

#[test]
fn titan_validation_modes_equivalent() {
    assert_modes_equivalent(EngineMode::Titan);
}

/// Snapshot versions survive GC identically in all validation modes even
/// when the snapshot is the *only* thing keeping a record alive.
#[test]
fn snapshot_pinned_records_survive_in_all_modes() {
    for validate in [
        GcValidateMode::Point,
        GcValidateMode::Merge,
        GcValidateMode::Parallel,
    ] {
        let env: EnvRef = MemEnv::shared();
        let db = Db::open(opts(env, EngineMode::Scavenger, validate)).unwrap();
        db.put("pinned", value(1, 4096)).unwrap();
        db.flush().unwrap();
        let snap = db.snapshot();
        // Make the original file collectible: overwrite and churn.
        for round in 0..4 {
            db.put("pinned", value(100 + round, 4096)).unwrap();
            for i in 0..30 {
                db.put(format!("fill{i:02}"), value(i, 2048)).unwrap();
            }
            db.flush().unwrap();
        }
        db.compact_all().unwrap();
        db.run_gc_until_clean().unwrap();
        assert_eq!(
            db.get_with(&scavenger::ReadOptions::pinned(&snap), "pinned")
                .unwrap()
                .unwrap(),
            bytes::Bytes::from(value(1, 4096)),
            "{validate:?}: snapshot version lost"
        );
        assert_eq!(
            db.get("pinned").unwrap().unwrap(),
            bytes::Bytes::from(value(103, 4096)),
            "{validate:?}: latest version wrong"
        );
        drop(snap);
    }
}

/// The dry-run validation report agrees across all three modes and with
/// the file's actual live-record count.
#[test]
fn dry_run_validation_agrees_across_modes() {
    let env: EnvRef = MemEnv::shared();
    let mut o = opts(env, EngineMode::Scavenger, GcValidateMode::Auto);
    o.memtable_size = 1 << 20; // one flush ...
    o.vsst_target_size = 4 << 20; // ... -> one value file
    let db = Db::open(o).unwrap();
    for i in 0..300 {
        db.put(format!("key{i:03}"), value(i, 1024)).unwrap();
    }
    db.flush().unwrap();
    // Overwrite a third; those records in the original file become dead
    // (their newer versions live in a newer value file).
    for i in 0..100 {
        db.put(format!("key{i:03}"), value(9000 + i, 1024)).unwrap();
    }
    db.flush().unwrap();
    db.compact_all().unwrap();

    let mut files = db.value_store().all_files();
    files.sort_by_key(|m| m.file);
    let first = files.first().expect("value files exist").file;
    let point = db
        .gc_validate_file(first, Some(GcValidateMode::Point))
        .unwrap();
    let merge = db
        .gc_validate_file(first, Some(GcValidateMode::Merge))
        .unwrap();
    let parallel = db
        .gc_validate_file(first, Some(GcValidateMode::Parallel))
        .unwrap();
    assert_eq!(point.records, merge.records);
    assert_eq!(point.valid, merge.valid, "merge diverged");
    assert_eq!(point.valid, parallel.valid, "parallel diverged");
    assert_eq!(point.records, 300);
    assert_eq!(point.valid, 200, "100 of 300 records were overwritten");
    assert_eq!(merge.mode, GcValidateMode::Merge);
    assert_eq!(parallel.mode, GcValidateMode::Parallel);
}

/// Merge-validate actually exercises the sweep machinery (counters move),
/// so the equivalence above is not vacuous.
#[test]
fn merge_mode_reports_sweep_counters() {
    let env: EnvRef = MemEnv::shared();
    let db = Db::open(opts(env, EngineMode::Scavenger, GcValidateMode::Merge)).unwrap();
    for round in 0..4 {
        for i in 0..80 {
            db.put(format!("key{i:03}"), value(round * 100 + i, 2048))
                .unwrap();
        }
        db.flush().unwrap();
    }
    db.compact_all().unwrap();
    db.run_gc_until_clean().unwrap();
    let gc = db.stats().gc;
    assert!(gc.validate_batches > 0, "validation ran");
    assert!(gc.validate_sweeps > 0, "merge sweeps ran");
    assert!(
        gc.validate_sweep_steps + gc.validate_sweep_seeks > 0,
        "sweeps did work"
    );
    assert_eq!(
        gc.validate_point_lookups, 0,
        "no point lookups in Merge mode"
    );
}

/// Write-back (Titan) dry-run validation uses address identity: records
/// relocated by GC stay live even though their written-back index
/// entries carry fresh sequence numbers.
#[test]
fn dry_run_uses_address_identity_for_writeback() {
    let env: EnvRef = MemEnv::shared();
    let db = Db::open(opts(env, EngineMode::Titan, GcValidateMode::Point)).unwrap();
    for round in 0..4 {
        for i in 0..40 {
            db.put(format!("key{i:03}"), value(round * 64 + i, 2048))
                .unwrap();
        }
        db.flush().unwrap();
    }
    db.compact_all().unwrap();
    assert!(
        db.run_gc_until_clean().unwrap() > 0,
        "Titan GC must relocate"
    );
    // The newest blob file is a GC output holding only live records.
    let newest = db
        .value_store()
        .all_files()
        .iter()
        .map(|m| m.file)
        .max()
        .expect("value files exist");
    for mode in [
        GcValidateMode::Point,
        GcValidateMode::Merge,
        GcValidateMode::Parallel,
    ] {
        let rep = db.gc_validate_file(newest, Some(mode)).unwrap();
        assert!(rep.records > 0);
        assert_eq!(
            rep.valid, rep.records,
            "{mode:?}: relocated records must all be live despite fresh index seqs"
        );
    }
}
