//! GC executor equivalence: the sequential baseline (`gc_threads = 1`,
//! pipeline Off), parallel fetch (`gc_threads = 4`, pipeline Off), and
//! the overlapped pipeline (On) must be *bit-identical* — same
//! `GcOutcome` sequence, same surviving records, same hot/cold file
//! routing — under overwrites, deletes, snapshots pinning old versions,
//! and inheritance chains built by repeated GC (mirrors
//! `tests/integration_gc_validation.rs`, which does the same for the
//! validation modes).

use proptest::prelude::*;
use scavenger::{Db, EngineMode, GcOutcome, GcPipeline, MemEnv, Options};
use scavenger_env::EnvRef;

fn opts(env: EnvRef, mode: EngineMode, threads: usize, pipeline: GcPipeline) -> Options {
    let mut o = Options::new(env, "db", mode);
    o.memtable_size = 8 * 1024;
    o.vsst_target_size = 32 * 1024;
    o.base_level_bytes = 64 * 1024;
    o.ksst_target_size = 16 * 1024;
    o.auto_gc = false;
    o.gc_threads = threads;
    o.gc_pipeline = pipeline;
    // Small batches so a pipelined job spans many batches even in these
    // small workloads (otherwise one batch degenerates to sequential).
    o.gc_pipeline_batch = 64;
    o
}

fn value(i: usize, len: usize) -> Vec<u8> {
    let mut v = vec![(i % 251) as u8; len];
    v[0] = (i >> 8) as u8;
    v
}

/// `(key, latest value, snapshot view)` for one surviving record.
type Survivor = (Vec<u8>, Vec<u8>, Option<Vec<u8>>);

/// `(file, hot, entries, size)` for every live value file — the full
/// observable result of hot/cold routing and write batching.
type FileSet = Vec<(u64, bool, u64, u64)>;

fn surviving_records(db: &Db, snap: Option<&scavenger::Snapshot>) -> Vec<Survivor> {
    let mut out = Vec::new();
    let mut it = db.scan(b"", None).unwrap();
    while let Some(e) = it.next_entry().unwrap() {
        // Pinned read through the snapshot when one is held; otherwise
        // the latest state (nothing writes concurrently here, so that
        // is the same epoch the scan observed).
        let snap_view = match snap {
            Some(s) => db
                .get_with(&scavenger::ReadOptions::pinned(s), &e.key)
                .unwrap(),
            None => db.get(&e.key).unwrap(),
        }
        .map(|b| b.to_vec());
        out.push((e.key, e.value.to_vec(), snap_view));
    }
    out
}

fn value_file_set(db: &Db) -> FileSet {
    let mut files: FileSet = db
        .value_store()
        .all_files()
        .iter()
        .map(|m| (m.file, m.hot, m.entries, m.size))
        .collect();
    files.sort();
    files
}

/// Drive one full workload: load, overwrite (hot skew), delete,
/// snapshot-pin, then GC to a fixed point — twice, so the second round
/// collects records that already live behind inheritance edges.
fn run_workload(
    mode: EngineMode,
    threads: usize,
    pipeline: GcPipeline,
) -> (Vec<GcOutcome>, Vec<Survivor>, FileSet) {
    let env: EnvRef = MemEnv::shared();
    let db = Db::open(opts(env, mode, threads, pipeline)).unwrap();

    for i in 0..120 {
        db.put(format!("key{i:03}"), value(i, 2048)).unwrap();
    }
    db.flush().unwrap();
    // Titan defers GC entirely while snapshots exist, so only the
    // no-writeback schemes hold one through the GC waves.
    let snap = (mode != EngineMode::Titan).then(|| db.snapshot());
    for round in 1..=3 {
        for i in 0..60 {
            db.put(format!("key{i:03}"), value(round * 1000 + i, 2048))
                .unwrap();
        }
        db.flush().unwrap();
    }
    for i in (90..120).step_by(2) {
        db.delete(format!("key{i:03}")).unwrap();
    }
    db.flush().unwrap();
    db.compact_all().unwrap();

    let mut outcomes = Vec::new();
    while let Some(out) = db.run_gc_at(0.05).unwrap() {
        outcomes.push(out);
        assert!(outcomes.len() < 256, "runaway GC");
    }
    for i in 0..40 {
        db.put(format!("key{i:03}"), value(7000 + i, 2048)).unwrap();
    }
    db.flush().unwrap();
    db.compact_all().unwrap();
    while let Some(out) = db.run_gc_at(0.05).unwrap() {
        outcomes.push(out);
        assert!(outcomes.len() < 256, "runaway GC");
    }

    let survivors = surviving_records(&db, snap.as_ref());
    let files = value_file_set(&db);
    drop(snap);
    (outcomes, survivors, files)
}

fn assert_executors_equivalent(mode: EngineMode) {
    let (base_outcomes, base_survivors, base_files) = run_workload(mode, 1, GcPipeline::Off);
    assert!(
        !base_outcomes.is_empty(),
        "{mode:?}: workload must trigger GC jobs"
    );
    for (threads, pipeline) in [
        (4, GcPipeline::Off), // parallel fetch, sequential stages
        (1, GcPipeline::On),  // overlapped stages, serial intra-stage I/O
        (4, GcPipeline::On),  // both levers
    ] {
        let (outcomes, survivors, files) = run_workload(mode, threads, pipeline);
        assert_eq!(
            base_outcomes, outcomes,
            "{mode:?}: threads={threads} {pipeline:?} GcOutcome sequence diverged"
        );
        assert_eq!(
            base_survivors, survivors,
            "{mode:?}: threads={threads} {pipeline:?} surviving record set diverged"
        );
        assert_eq!(
            base_files, files,
            "{mode:?}: threads={threads} {pipeline:?} value-file set (hot/cold routing, \
             rollover boundaries, file numbers) diverged"
        );
    }
}

#[test]
fn scavenger_executors_equivalent() {
    assert_executors_equivalent(EngineMode::Scavenger);
}

#[test]
fn terark_executors_equivalent() {
    assert_executors_equivalent(EngineMode::Terark);
}

#[test]
fn titan_executors_equivalent() {
    assert_executors_equivalent(EngineMode::Titan);
}

/// The pipelined executor actually runs (batches flow through it) and
/// the sequential baseline never touches it. Overlap itself is asserted
/// only in the multi-core CI smoke below — on a single-core runner the
/// scheduler may serialize the stage threads.
#[test]
fn pipeline_counters_move_only_when_enabled() {
    for (pipeline, expect_pipelined) in [(GcPipeline::Off, false), (GcPipeline::On, true)] {
        let env: EnvRef = MemEnv::shared();
        let db = Db::open(opts(env, EngineMode::Scavenger, 4, pipeline)).unwrap();
        for i in 0..120 {
            db.put(format!("key{i:03}"), value(i, 2048)).unwrap();
        }
        db.flush().unwrap();
        // Overwrite alternating keys: every value file keeps a live/dead
        // mix, so GC actually rewrites (and batches) survivors.
        for round in 0..3 {
            for i in (0..120).step_by(2) {
                db.put(format!("key{i:03}"), value(round * 200 + i, 2048))
                    .unwrap();
            }
            db.flush().unwrap();
        }
        db.compact_all().unwrap();
        db.run_gc_until_clean().unwrap();
        let gc = db.stats().gc;
        assert!(gc.write_batches > 0, "write path always batches");
        if expect_pipelined {
            assert!(gc.pipeline_jobs > 0, "pipeline executor must run");
            assert!(
                gc.pipeline_batches > 1,
                "job must span several batches (got {})",
                gc.pipeline_batches
            );
        } else {
            assert_eq!(gc.pipeline_jobs, 0, "Off must stay sequential");
            assert_eq!(gc.pipeline_batches, 0);
            assert_eq!(gc.pipeline_overlaps, 0);
        }
    }
}

/// Multi-core CI smoke (run with `-- --ignored`): under `gc_threads = 4`
/// on a multi-core runner, parallel fetch must dispatch workers and the
/// pipelined executor must report actual stage overlap.
#[test]
#[ignore = "needs a multi-core runner; exercised by the CI multicore job"]
fn multicore_pipeline_overlap_smoke() {
    let env: EnvRef = MemEnv::shared();
    let mut o = opts(env, EngineMode::Scavenger, 4, GcPipeline::On);
    o.memtable_size = 64 << 20; // flush only when asked
    o.vsst_target_size = 1 << 20;
    o.ksst_target_size = 256 * 1024;
    o.base_level_bytes = 16 << 20;
    o.gc_batch_files = 8;
    o.gc_pipeline_batch = 1024;
    let db = Db::open(o).unwrap();
    // Several source files, each left with a ~50% live mix, so one GC
    // job spans many batches with real Fetch + Write work per stage.
    let n = 12_000;
    let slices = 6;
    let per = n / slices;
    for s in 0..slices {
        for i in (s * per)..(s + 1) * per {
            db.put(format!("key{i:06}"), value(i, 700)).unwrap();
        }
        db.flush().unwrap();
    }
    for i in (0..n).step_by(2) {
        db.put(format!("key{i:06}"), value(9000 + i, 700)).unwrap();
    }
    db.flush().unwrap();
    db.compact_all().unwrap();
    let mut forced = 0;
    while db.lsm().force_compact_once().unwrap() {
        forced += 1;
        assert!(forced < 1024, "runaway forced compaction");
    }
    db.run_gc_until_clean().unwrap();
    let gc = db.stats().gc;
    assert!(gc.pipeline_jobs > 0, "pipeline must run");
    assert!(gc.pipeline_batches > 2, "job must span batches");
    assert!(
        gc.pipeline_overlaps > 0,
        "stages must overlap on a multi-core runner (batches={}, backpressure={})",
        gc.pipeline_batches,
        gc.pipeline_backpressure
    );
    assert!(
        gc.fetch_parallel_jobs > 0,
        "parallel fetch must dispatch workers"
    );
}

/// Regression (write-phase file allocation): a Titan GC whose candidates
/// hold only dead records must not allocate a value file — and no GC
/// path may ever surface a zero-entry value file, even when the size
/// target makes the writer roll over on the very last record.
#[test]
fn all_dead_candidates_never_emit_value_files() {
    let env: EnvRef = MemEnv::shared();
    let mut o = opts(env, EngineMode::Titan, 1, GcPipeline::Off);
    o.vsst_target_size = 16 * 1024;
    let db = Db::open(o).unwrap();
    for i in 0..60 {
        db.put(format!("key{i:03}"), value(i, 2048)).unwrap();
    }
    db.flush().unwrap();
    // Overwrite everything: the first blob file becomes 100% garbage.
    for i in 0..60 {
        db.put(format!("key{i:03}"), value(9000 + i, 2048)).unwrap();
    }
    db.flush().unwrap();
    db.compact_all().unwrap();
    let files_before: Vec<u64> = db
        .value_store()
        .all_files()
        .iter()
        .map(|m| m.file)
        .collect();
    let outcome = db.run_gc_at(0.95); // only all-dead files qualify
    if let Ok(Some(out)) = &outcome {
        assert_eq!(
            out.records_rewritten, 0,
            "an all-dead candidate set rewrites nothing"
        );
    }
    let metas = db.value_store().all_files();
    assert!(
        metas.iter().all(|m| m.entries > 0),
        "no value file may be empty: {metas:?}"
    );
    // No new file may have appeared: nothing was rewritten.
    let files_after: Vec<u64> = metas.iter().map(|m| m.file).collect();
    for f in &files_after {
        assert!(
            files_before.contains(f),
            "GC allocated file {f} despite rewriting no records"
        );
    }
}

/// Rollover landing exactly on the final record of a job must not leave
/// an empty trailing file (the eager-allocation bug this PR removes):
/// after GC under a tiny size target, every live value file holds
/// records and every on-disk value file is tracked.
#[test]
fn rollover_at_job_end_leaves_no_empty_files() {
    for (mode, pipeline) in [
        (EngineMode::Scavenger, GcPipeline::Off),
        (EngineMode::Scavenger, GcPipeline::On),
        (EngineMode::Terark, GcPipeline::Off),
        (EngineMode::Titan, GcPipeline::Off),
    ] {
        let env: EnvRef = MemEnv::shared();
        let mut o = opts(env.clone(), mode, 2, pipeline);
        // Tiny target: many rollovers per job, so some job ends exactly
        // at a rollover boundary.
        o.vsst_target_size = 8 * 1024;
        let db = Db::open(o).unwrap();
        for round in 0..4 {
            for i in 0..80 {
                db.put(format!("key{i:03}"), value(round * 100 + i, 2048))
                    .unwrap();
            }
            db.flush().unwrap();
        }
        db.compact_all().unwrap();
        db.run_gc_until_clean().unwrap();
        let metas = db.value_store().all_files();
        assert!(
            metas.iter().all(|m| m.entries > 0),
            "{mode:?} {pipeline:?}: empty value file surfaced"
        );
        // Every value file on disk is accounted for in the store: no
        // orphaned empty files left behind by an abandoned writer.
        let live: std::collections::BTreeSet<u64> = metas.iter().map(|m| m.file).collect();
        for path in env.list_prefix("db/").unwrap() {
            if let Some(num) = path
                .strip_prefix("db/")
                .and_then(|p| p.strip_suffix(".vsst").or_else(|| p.strip_suffix(".blob")))
            {
                let n: u64 = num.parse().unwrap();
                assert!(
                    live.contains(&n),
                    "{mode:?} {pipeline:?}: orphan value file {path}"
                );
            }
        }
        // Data still correct.
        for i in 0..80 {
            assert_eq!(
                db.get(format!("key{i:03}")).unwrap().unwrap(),
                bytes::Bytes::from(value(300 + i, 2048)),
                "{mode:?} {pipeline:?}: key{i}"
            );
        }
    }
}

// ---------------- property test ----------------

#[derive(Debug, Clone)]
enum Op {
    Put(u8, u16),
    Delete(u8),
    Snapshot,
    DropSnapshot,
    Flush,
    Compact,
    Gc,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (any::<u8>(), 600u16..3000).prop_map(|(k, len)| Op::Put(k, len)),
        2 => any::<u8>().prop_map(Op::Delete),
        1 => Just(Op::Snapshot),
        1 => Just(Op::DropSnapshot),
        1 => Just(Op::Flush),
        1 => Just(Op::Compact),
        2 => Just(Op::Gc),
    ]
}

/// Replay `ops` under one executor config; returns every observable:
/// GC outcomes, final records (latest + oldest-snapshot view), and the
/// value-file set.
fn replay(
    ops: &[Op],
    threads: usize,
    pipeline: GcPipeline,
) -> (Vec<GcOutcome>, Vec<Survivor>, FileSet) {
    let env: EnvRef = MemEnv::shared();
    let db = Db::open(opts(env, EngineMode::Scavenger, threads, pipeline)).unwrap();
    let mut outcomes = Vec::new();
    let mut snapshots = Vec::new();
    let mut gen: u32 = 0;
    for op in ops {
        match op {
            Op::Put(k, len) => {
                gen += 1;
                db.put(
                    format!("key{k:03}"),
                    value(*k as usize + gen as usize, *len as usize),
                )
                .unwrap();
            }
            Op::Delete(k) => {
                db.delete(format!("key{k:03}")).unwrap();
            }
            Op::Snapshot => snapshots.push(db.snapshot()),
            Op::DropSnapshot => {
                snapshots.pop();
            }
            Op::Flush => db.flush().unwrap(),
            Op::Compact => db.compact_all().unwrap(),
            Op::Gc => {
                while let Some(out) = db.run_gc_at(0.05).unwrap() {
                    outcomes.push(out);
                    assert!(outcomes.len() < 512, "runaway GC");
                }
            }
        }
    }
    db.flush().unwrap();
    let survivors = surviving_records(&db, snapshots.first());
    let files = value_file_set(&db);
    drop(snapshots);
    (outcomes, survivors, files)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, // each case replays a full DB lifecycle 3×; keep CI time sane
        ..ProptestConfig::default()
    })]

    /// Parallel fetch and the overlapped pipeline are observationally
    /// identical to the sequential baseline on arbitrary op sequences —
    /// including snapshots pinning old versions, overwrites, deletes,
    /// and whatever inheritance chains the interleaved GC calls build.
    #[test]
    fn executors_equivalent_on_random_workloads(
        ops in proptest::collection::vec(op_strategy(), 1..100)
    ) {
        let base = replay(&ops, 1, GcPipeline::Off);
        let parfetch = replay(&ops, 4, GcPipeline::Off);
        prop_assert_eq!(&base, &parfetch, "parallel fetch diverged");
        let pipelined = replay(&ops, 4, GcPipeline::On);
        prop_assert_eq!(&base, &pipelined, "pipelined executor diverged");
    }
}
