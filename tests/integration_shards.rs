//! Sharded-engine equivalence and routing-stability suite.
//!
//! The contract under test: a 4-shard [`DbShards`] is observationally
//! identical to a single [`Db`] — same gets, same merged scan order and
//! contents, same snapshot reads — under a random op sequence with
//! flush/compaction/GC interleavings; routing is stable across reopen;
//! cross-shard scans honor bound edges exactly; and the §III-D space
//! budget is enforced globally across shards.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scavenger::{
    Db, DbShards, EngineMode, MemEnv, Options, ReadOptions, ShardedOptions, WriteOptions,
};
use scavenger_env::EnvRef;

fn single_opts(env: EnvRef, dir: &str, mode: EngineMode) -> Options {
    let mut o = Options::new(env, dir, mode);
    o.memtable_size = 8 * 1024;
    o.vsst_target_size = 32 * 1024;
    o.base_level_bytes = 64 * 1024;
    o.ksst_target_size = 16 * 1024;
    o.auto_gc = false;
    o
}

fn sharded_opts(env: EnvRef, dir: &str, mode: EngineMode, shards: usize) -> ShardedOptions {
    let mut o = ShardedOptions::new(env.clone(), dir, mode);
    o.num_shards = shards;
    o.base = single_opts(env, dir, mode);
    o
}

fn value(i: usize, len: usize) -> Vec<u8> {
    let mut v = vec![(i % 251) as u8; len];
    v[0] = (i >> 8) as u8;
    v[1] = (i & 0xff) as u8;
    v
}

/// One random operation, replayable against both engines.
#[derive(Debug, Clone)]
enum Op {
    Put(usize, usize),
    Delete(usize),
    Flush,
    Compact,
    Gc,
}

fn random_ops(seed: u64, n: usize) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ops = Vec::with_capacity(n);
    for _ in 0..n {
        let roll: u32 = rng.gen_range(0..100u32);
        ops.push(match roll {
            0..=59 => Op::Put(rng.gen_range(0..150usize), rng.gen_range(64..3000usize)),
            60..=74 => Op::Delete(rng.gen_range(0..150usize)),
            75..=87 => Op::Flush,
            88..=93 => Op::Compact,
            _ => Op::Gc,
        });
    }
    ops
}

fn key(i: usize) -> String {
    format!("key{i:04}")
}

/// The full observable state: every key's latest value, the merged full
/// scan, a bounded scan, and snapshot reads taken mid-sequence.
type Observation = (
    Vec<(String, Option<Vec<u8>>)>,
    Vec<(Vec<u8>, Vec<u8>)>,
    Vec<(Vec<u8>, Vec<u8>)>,
    Vec<(String, Option<Vec<u8>>)>,
);

/// Either engine behind the identical surface the replay exercises.
enum Engine {
    Single(Db),
    Sharded(DbShards),
}

/// A snapshot handle from either engine.
enum Snap {
    Single(scavenger::Snapshot),
    Sharded(scavenger::ShardsSnapshot),
}

impl Engine {
    fn put(&self, k: String, v: Vec<u8>) {
        match self {
            Engine::Single(db) => db.put(k, v).map(|_| ()).unwrap(),
            Engine::Sharded(db) => db.put(k, v).map(|_| ()).unwrap(),
        }
    }

    fn delete(&self, k: String) {
        match self {
            Engine::Single(db) => db.delete(k).map(|_| ()).unwrap(),
            Engine::Sharded(db) => db.delete(k).map(|_| ()).unwrap(),
        }
    }

    fn flush(&self) {
        match self {
            Engine::Single(db) => db.flush().unwrap(),
            Engine::Sharded(db) => db.flush().unwrap(),
        }
    }

    fn compact(&self) {
        match self {
            Engine::Single(db) => db.compact_all().unwrap(),
            Engine::Sharded(db) => {
                db.compact_all().unwrap();
            }
        }
    }

    fn gc(&self) {
        match self {
            Engine::Single(db) => {
                db.run_gc().unwrap();
            }
            Engine::Sharded(db) => {
                db.run_gc().unwrap();
            }
        }
    }

    fn get(&self, k: String) -> Option<Vec<u8>> {
        match self {
            Engine::Single(db) => db.get(k).unwrap().map(|b| b.to_vec()),
            Engine::Sharded(db) => db.get(k).unwrap().map(|b| b.to_vec()),
        }
    }

    fn snapshot(&self) -> Snap {
        match self {
            Engine::Single(db) => Snap::Single(db.snapshot()),
            Engine::Sharded(db) => Snap::Sharded(db.snapshot()),
        }
    }

    fn scan(&self, lo: &[u8], hi: Option<&[u8]>) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        match self {
            Engine::Single(db) => {
                let mut it = db.scan(lo, hi).unwrap();
                while let Some(e) = it.next_entry().unwrap() {
                    out.push((e.key, e.value.to_vec()));
                }
            }
            Engine::Sharded(db) => {
                let mut it = db.scan(lo, hi).unwrap();
                while let Some(e) = it.next_entry().unwrap() {
                    out.push((e.key, e.value.to_vec()));
                }
            }
        }
        out
    }
}

impl Snap {
    fn get(&self, k: String) -> Option<Vec<u8>> {
        match self {
            Snap::Single(s) => s.get(k).unwrap().map(|b| b.to_vec()),
            Snap::Sharded(s) => s.get(k).unwrap().map(|b| b.to_vec()),
        }
    }
}

/// Replay `ops` against either engine, snapshotting at `snap_at` ops,
/// and collect the full observable state.
fn replay(db: &Engine, ops: &[Op], snap_at: usize) -> Observation {
    let mut snap = None;
    for (i, op) in ops.iter().enumerate() {
        if i == snap_at {
            snap = Some(db.snapshot());
        }
        match op {
            Op::Put(k, len) => db.put(key(*k), value(*k + len, *len)),
            Op::Delete(k) => db.delete(key(*k)),
            Op::Flush => db.flush(),
            Op::Compact => db.compact(),
            Op::Gc => db.gc(),
        }
    }
    let gets = (0..150).map(|i| (key(i), db.get(key(i)))).collect();
    let full = db.scan(b"", None);
    let bounded = db.scan(b"key0040", Some(b"key0090"));
    let snap_reads = match &snap {
        Some(s) => (0..150).map(|i| (key(i), s.get(key(i)))).collect(),
        None => Vec::new(),
    };
    (gets, full, bounded, snap_reads)
}

fn replay_single(env: EnvRef, ops: &[Op], snap_at: usize, mode: EngineMode) -> Observation {
    let db = Engine::Single(Db::open(single_opts(env, "single", mode)).unwrap());
    replay(&db, ops, snap_at)
}

fn replay_sharded(
    env: EnvRef,
    ops: &[Op],
    snap_at: usize,
    mode: EngineMode,
    shards: usize,
) -> Observation {
    let db = Engine::Sharded(DbShards::open(sharded_opts(env, "sharded", mode, shards)).unwrap());
    replay(&db, ops, snap_at)
}

/// The acceptance equivalence suite: 4-shard DbShards must match a
/// single Db result-for-result under random op sequences interleaving
/// puts/deletes with flush, compaction, and GC, including reads through
/// a snapshot taken mid-sequence.
#[test]
fn four_shards_match_single_db_under_random_ops() {
    for (seed, mode) in [
        (11, EngineMode::Scavenger),
        (12, EngineMode::Scavenger),
        (13, EngineMode::Terark),
        (14, EngineMode::Titan),
    ] {
        let ops = random_ops(seed, 400);
        let single = replay_single(MemEnv::shared(), &ops, 200, mode);
        let sharded = replay_sharded(MemEnv::shared(), &ops, 200, mode, 4);
        assert_eq!(single.0, sharded.0, "seed {seed} {mode:?}: gets diverged");
        assert_eq!(
            single.1, sharded.1,
            "seed {seed} {mode:?}: merged full scan diverged"
        );
        assert_eq!(
            single.2, sharded.2,
            "seed {seed} {mode:?}: bounded scan diverged"
        );
        assert_eq!(
            single.3, sharded.3,
            "seed {seed} {mode:?}: snapshot reads diverged"
        );
    }
}

/// Cross-shard scan ordering at bound edges: bounds exactly on keys,
/// bounds between keys, empty ranges, a range owned entirely by one
/// shard (every other shard's iterator is empty — "reverse-empty"), and
/// `lower/upper_bound` through the unified `ReadOptions`.
#[test]
fn cross_shard_scan_bound_edges() {
    let db = DbShards::open(sharded_opts(
        MemEnv::shared(),
        "bounds",
        EngineMode::Scavenger,
        4,
    ))
    .unwrap();
    for i in 0..100 {
        db.put(key(i), value(i, 600)).unwrap();
    }
    db.flush().unwrap();

    // Exact-key bounds: lower inclusive, upper exclusive.
    let got = db
        .scan(b"key0010", Some(b"key0020"))
        .unwrap()
        .collect_n(usize::MAX)
        .unwrap();
    assert_eq!(got.len(), 10);
    assert_eq!(got[0].key, b"key0010");
    assert_eq!(got[9].key, b"key0019");

    // Bounds between keys.
    let got = db
        .scan(b"key0010x", Some(b"key0012x"))
        .unwrap()
        .collect_n(usize::MAX)
        .unwrap();
    assert_eq!(
        got.iter().map(|e| e.key.clone()).collect::<Vec<_>>(),
        vec![b"key0011".to_vec(), b"key0012".to_vec()]
    );

    // Empty range (lower == upper) and inverted range.
    assert!(db
        .scan(b"key0050", Some(b"key0050"))
        .unwrap()
        .collect_n(usize::MAX)
        .unwrap()
        .is_empty());
    assert!(db
        .scan(b"key0060", Some(b"key0050"))
        .unwrap()
        .collect_n(usize::MAX)
        .unwrap()
        .is_empty());

    // Range past the end of the data.
    assert!(db
        .scan(b"key9000", None)
        .unwrap()
        .collect_n(usize::MAX)
        .unwrap()
        .is_empty());

    // A single-key range: exactly one shard contributes; all other
    // shard iterators come up empty and the merge must still terminate
    // in order.
    let got = db
        .scan(b"key0042", Some(b"key0043"))
        .unwrap()
        .collect_n(usize::MAX)
        .unwrap();
    assert_eq!(got.len(), 1);
    assert_eq!(got[0].key, b"key0042");
    assert_eq!(got[0].value, bytes::Bytes::from(value(42, 600)));

    // Bounds through the unified ReadOptions (and fill_cache=false path).
    let ro = ReadOptions {
        lower_bound: Some(b"key0095".to_vec()),
        upper_bound: None,
        fill_cache: false,
        ..ReadOptions::default()
    };
    let got = db.scan_with(&ro).unwrap().collect_n(usize::MAX).unwrap();
    assert_eq!(got.len(), 5);
    assert!(got.windows(2).all(|w| w[0].key < w[1].key));

    // Bounded scan through a pinned view set: later writes invisible.
    // The sharded view pins through the same ReadOptions type.
    let view = db.view();
    db.put("key0011", b"overwritten".to_vec()).unwrap();
    let ro = ReadOptions {
        lower_bound: Some(b"key0010".to_vec()),
        upper_bound: Some(b"key0012".to_vec()),
        ..ReadOptions::pinned(&view)
    };
    let got = db.scan_with(&ro).unwrap().collect_n(usize::MAX).unwrap();
    assert_eq!(got.len(), 2);
    assert_eq!(got[1].value, bytes::Bytes::from(value(11, 600)));
}

/// Routing must be byte-stable across close + reopen: every key routes
/// to the shard that owns its data, even when the caller passes a
/// different (ignored) seed at reopen, and all data reads back.
#[test]
fn shard_routing_stable_across_reopen() {
    let env: EnvRef = MemEnv::shared();
    let placements: Vec<usize>;
    {
        let mut o = sharded_opts(env.clone(), "reopen", EngineMode::Scavenger, 4);
        o.route_seed = 0x1234_5678;
        let db = DbShards::open(o).unwrap();
        for i in 0..200 {
            db.put(key(i), value(i, 1024)).unwrap();
        }
        db.flush().unwrap();
        placements = (0..200).map(|i| db.shard_of(key(i))).collect();
        assert_eq!(db.route_seed(), 0x1234_5678);
    }
    {
        // Different caller seed: the stored routing contract wins.
        let mut o = sharded_opts(env.clone(), "reopen", EngineMode::Scavenger, 4);
        o.route_seed = 0xdead_beef;
        let db = DbShards::open(o).unwrap();
        assert_eq!(db.route_seed(), 0x1234_5678, "stored seed is authoritative");
        for (i, &placed) in placements.iter().enumerate() {
            assert_eq!(
                db.shard_of(key(i)),
                placed,
                "key{i} moved shards across reopen"
            );
            assert_eq!(
                db.get(key(i)).unwrap().unwrap(),
                bytes::Bytes::from(value(i, 1024)),
                "key{i} unreadable after reopen"
            );
        }
        // The data actually lives on the routed shard.
        for i in (0..200).step_by(17) {
            assert!(db.shard(placements[i]).get(key(i)).unwrap().is_some());
        }
    }
}

/// Reopening with a different shard count must fail loudly, not
/// silently route keys away from their data.
#[test]
fn reopen_with_wrong_shard_count_is_refused() {
    let env: EnvRef = MemEnv::shared();
    {
        let db = DbShards::open(sharded_opts(
            env.clone(),
            "countdb",
            EngineMode::Scavenger,
            4,
        ))
        .unwrap();
        db.put("k", b"v".to_vec()).unwrap();
    }
    let err = DbShards::open(sharded_opts(
        env.clone(),
        "countdb",
        EngineMode::Scavenger,
        8,
    ));
    assert!(err.is_err(), "shard-count mismatch must refuse to open");
    // The original count still works.
    let db = DbShards::open(sharded_opts(env, "countdb", EngineMode::Scavenger, 4)).unwrap();
    assert_eq!(
        db.get("k").unwrap().unwrap(),
        bytes::Bytes::from_static(b"v")
    );
}

/// The §III-D throttle enforces ONE budget across shards: total space
/// is pulled back toward the global limit even though each admission
/// check runs on a single shard, and activations aggregate on the
/// shared throttle.
#[test]
fn space_budget_is_global_across_shards() {
    let mut o = sharded_opts(MemEnv::shared(), "quota", EngineMode::Scavenger, 4);
    o.base.space_limit = Some(900 * 1024); // global cap, ~225 KiB/shard
    let db = DbShards::open(o).unwrap();
    // ~3 MiB of updates over a small key set: garbage everywhere.
    for round in 0..16 {
        for i in 0..96 {
            db.put(format!("key{i:02}"), value(round + i, 2048))
                .unwrap();
        }
    }
    db.flush().unwrap();
    let stalls: u64 = db.throttle().activation_count();
    assert!(stalls > 0, "global throttle must have activated");
    // Per-shard stats see the same shared counter.
    for s in db.shard_stats() {
        assert_eq!(s.throttle_stalls, stalls);
    }
    // All data correct under throttling.
    for i in 0..96 {
        assert_eq!(
            db.get(format!("key{i:02}")).unwrap().unwrap(),
            bytes::Bytes::from(value(15 + i, 2048))
        );
    }
    // Aggregate space pulled back toward the quota (allow one memtable +
    // one vSST of transient overshoot per shard).
    let total = db.space().total();
    assert!(
        total < (900 + 4 * 160) * 1024,
        "global space {total} should be near the 900 KiB budget"
    );
}

/// Pinned-read-point gauges: views and snapshots show up in stats while
/// registered and disappear on drop.
#[test]
fn read_point_gauges_track_views_and_snapshots() {
    let db = Db::open(single_opts(
        MemEnv::shared(),
        "gauges",
        EngineMode::Scavenger,
    ))
    .unwrap();
    db.put("k", value(1, 900)).unwrap();
    let s = db.stats();
    assert_eq!(s.pinned_views, 0);
    assert_eq!(s.live_snapshots, 0);
    assert!(s.oldest_read_point.is_none());

    let view = db.view();
    let snap = db.snapshot();
    let s = db.stats();
    assert_eq!(s.pinned_views, 1, "one live ReadView");
    assert_eq!(s.live_snapshots, 1, "one live Snapshot");
    assert_eq!(s.oldest_read_point, Some(view.sequence()));

    drop(view);
    drop(snap);
    let s = db.stats();
    assert_eq!(s.pinned_views, 0);
    assert_eq!(s.live_snapshots, 0);
    assert!(s.oldest_read_point.is_none());
}

/// Batched writes with per-call options route through shards, and
/// `WriteOptions::sync = false` stays functional through the sharded
/// entry points.
#[test]
fn sharded_write_options_and_batches() {
    let db = DbShards::open(sharded_opts(
        MemEnv::shared(),
        "wopts",
        EngineMode::Scavenger,
        3,
    ))
    .unwrap();
    let nosync = WriteOptions {
        sync: false,
        ..WriteOptions::default()
    };
    let mut batch = scavenger_lsm::WriteBatch::new();
    for i in 0..60 {
        batch.put(key(i), bytes::Bytes::from(value(i, 128)));
    }
    db.write_with(&nosync, batch).unwrap();
    for i in 0..60 {
        db.put_with(&nosync, key(i + 100), value(i, 700)).unwrap();
    }
    db.flush().unwrap();
    for i in 0..60 {
        assert!(db.get(key(i)).unwrap().is_some());
        assert!(db.get(key(i + 100)).unwrap().is_some());
    }
}

/// Multi-core acceptance check (run with `--include-ignored` in the CI
/// multicore job, `gc_threads = 4`): after a garbage-heavy workload
/// touching every shard, one `run_gc` fan-out must leave **every**
/// shard's GC stats non-zero — all shards did GC work through the
/// scoped-thread maintenance pool, i.e. background work parallelizes
/// across shards rather than serializing on one scheduler.
#[test]
#[ignore = "needs multiple cores to demonstrate parallel per-shard GC; CI runs it"]
fn multicore_gc_runs_on_every_shard() {
    let mut o = sharded_opts(MemEnv::shared(), "mc", EngineMode::Scavenger, 4);
    o.base.gc_threads = 4;
    let db = DbShards::open(o).unwrap();
    // Updates over a fixed key set → exposed garbage on every shard.
    for round in 0..6 {
        for i in 0..240 {
            db.put(key(i), value(round * 300 + i, 2048)).unwrap();
        }
        db.flush().unwrap();
    }
    db.compact_all().unwrap();
    let jobs = db.run_gc_until_clean().unwrap();
    assert!(jobs >= 4, "expected GC work on all shards, ran {jobs} jobs");
    let stats = db.shard_stats();
    for (i, s) in stats.iter().enumerate() {
        assert!(
            s.gc.runs > 0,
            "shard {i} ran no GC jobs (runs per shard: {:?})",
            stats.iter().map(|s| s.gc.runs).collect::<Vec<_>>()
        );
        assert!(s.gc.reclaimed_bytes > 0, "shard {i} reclaimed nothing");
    }
    // All data survives parallel cross-shard GC.
    for i in 0..240 {
        assert_eq!(
            db.get(key(i)).unwrap().unwrap(),
            bytes::Bytes::from(value(5 * 300 + i, 2048))
        );
    }
}
