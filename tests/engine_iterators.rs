//! `Iterator` conformance for the engine scan iterators ([`DbScanIter`]
//! and the sharded merge iterator): bound handling through the adapter
//! toolbox, early termination via `take`, error propagation (an errored
//! iterator yields `Some(Err)` once, then fuses to `None`), and
//! `collect_n` / `next_entry` equivalence with the `Iterator` impl on
//! both handle types.

use scavenger::shards::ShardsScanIter;
use scavenger::{
    Db, DbScanIter, DbShards, Engine, EngineMode, EnvRef, MemEnv, Options, Result, ScanEntry,
    ShardedOptions,
};

/// Test-local bridge over the two concrete iterators' legacy entry
/// points, so the generic contract check can compare them against the
/// `Iterator` surface on both handle types.
trait EntryIter: Iterator<Item = Result<ScanEntry>> {
    fn entry(&mut self) -> Result<Option<ScanEntry>>;
    fn first_n(&mut self, n: usize) -> Result<Vec<ScanEntry>>;
}

impl EntryIter for DbScanIter {
    fn entry(&mut self) -> Result<Option<ScanEntry>> {
        DbScanIter::next_entry(self)
    }

    fn first_n(&mut self, n: usize) -> Result<Vec<ScanEntry>> {
        DbScanIter::collect_n(self, n)
    }
}

impl EntryIter for ShardsScanIter {
    fn entry(&mut self) -> Result<Option<ScanEntry>> {
        ShardsScanIter::next_entry(self)
    }

    fn first_n(&mut self, n: usize) -> Result<Vec<ScanEntry>> {
        ShardsScanIter::collect_n(self, n)
    }
}

fn key(i: usize) -> String {
    format!("key{i:04}")
}

fn value(i: usize, len: usize) -> Vec<u8> {
    let mut v = vec![(i % 251) as u8; len];
    v[0] = (i >> 8) as u8;
    v
}

fn single(env: EnvRef, dir: &str) -> Db {
    Options::builder(env, dir, EngineMode::Scavenger)
        .memtable_size(8 * 1024)
        .vsst_target_size(32 * 1024)
        .auto_gc(false)
        .open()
        .unwrap()
}

fn sharded(env: EnvRef, dir: &str) -> DbShards {
    ShardedOptions::builder(env, dir, EngineMode::Scavenger)
        .num_shards(3)
        .memtable_size(8 * 1024)
        .vsst_target_size(32 * 1024)
        .auto_gc(false)
        .open()
        .unwrap()
}

fn load<E: Engine>(db: &E, n: usize) {
    for i in 0..n {
        db.put(key(i).as_bytes(), value(i, 1024).into()).unwrap();
    }
    db.flush().unwrap();
}

/// Generic over both handles: iterator results honor scan bounds, agree
/// with `collect_n` and `next_entry`, and `take` terminates early
/// without draining the range.
fn check_iterator_contract<E>(db: &E)
where
    E: Engine,
    E::Iter: EntryIter,
{
    load(db, 60);

    // Bounds: lower inclusive, upper exclusive, in global key order.
    let bounded: Vec<ScanEntry> = db
        .scan(b"key0010", Some(b"key0020"))
        .unwrap()
        .collect::<Result<_>>()
        .unwrap();
    assert_eq!(bounded.len(), 10);
    assert_eq!(bounded[0].key, key(10).into_bytes());
    assert_eq!(bounded[9].key, key(19).into_bytes());
    assert!(bounded.windows(2).all(|w| w[0].key < w[1].key));

    // Empty and inverted ranges yield nothing.
    assert_eq!(db.scan(b"key0030", Some(b"key0030")).unwrap().count(), 0);
    assert_eq!(db.scan(b"key0040", Some(b"key0030")).unwrap().count(), 0);

    // Early termination via `take`: exactly 3 entries, no further pull.
    let taken: Vec<ScanEntry> = db
        .scan(b"", None)
        .unwrap()
        .take(3)
        .collect::<Result<_>>()
        .unwrap();
    assert_eq!(
        taken.iter().map(|e| e.key.clone()).collect::<Vec<_>>(),
        vec![
            key(0).into_bytes(),
            key(1).into_bytes(),
            key(2).into_bytes()
        ]
    );

    // `by_ref().take` composes: the same iterator continues afterwards.
    let mut it = db.scan(b"", None).unwrap();
    let first: Vec<ScanEntry> = it.by_ref().take(2).collect::<Result<_>>().unwrap();
    let next = it.next().unwrap().unwrap();
    assert_eq!(first.len(), 2);
    assert_eq!(next.key, key(2).into_bytes());

    // collect_n is equivalent to take+collect on a fresh iterator.
    let via_collect_n = db.scan(b"", None).unwrap().first_n(7).unwrap();
    let via_take: Vec<ScanEntry> = db
        .scan(b"", None)
        .unwrap()
        .take(7)
        .collect::<Result<_>>()
        .unwrap();
    assert_eq!(via_collect_n, via_take);

    // next_entry is a thin wrapper over Iterator::next.
    let mut a = db.scan(b"key0005", Some(b"key0008")).unwrap();
    let mut b = db.scan(b"key0005", Some(b"key0008")).unwrap();
    loop {
        let ea = a.entry().unwrap();
        let eb = b.next().transpose().unwrap();
        assert_eq!(ea, eb);
        if ea.is_none() {
            break;
        }
    }
    // Exhausted iterators stay exhausted through both surfaces.
    assert!(a.entry().unwrap().is_none());
    assert!(b.next().is_none());
}

#[test]
fn iterator_contract_on_db() {
    check_iterator_contract(&single(MemEnv::shared(), "iter-db"));
}

#[test]
fn iterator_contract_on_db_shards() {
    check_iterator_contract(&sharded(MemEnv::shared(), "iter-shards"));
}

/// Delete every value file behind the engine's back so the first
/// separated-value resolve fails, then assert the error contract:
/// `Some(Err)` exactly once, `None` (fused) forever after.
fn delete_value_files(env: &EnvRef, root: &str) {
    let files = env.list_prefix(&format!("{root}/")).unwrap();
    let mut removed = 0;
    for f in files {
        if f.ends_with(".vsst") || f.ends_with(".blob") {
            env.remove_file(&f).unwrap();
            removed += 1;
        }
    }
    assert!(removed > 0, "setup must have created value files");
}

#[test]
fn errored_db_iterator_yields_err_then_fuses() {
    let env: EnvRef = MemEnv::shared();
    let db = single(env.clone(), "iter-err-db");
    // Written and flushed but never read: the value files are not yet in
    // any table-reader cache, so the scan must open them — and fail.
    load(&db, 20);
    delete_value_files(&env, "iter-err-db");

    let mut it = db.scan(b"", None).unwrap();
    let first = it.next();
    assert!(
        matches!(first, Some(Err(_))),
        "first pull must surface the resolve error, got {first:?}"
    );
    assert!(it.next().is_none(), "errored iterator must fuse");
    assert!(it.next().is_none(), "fused means fused");
    // The wrappers see the same fused state.
    assert!(it.next_entry().unwrap().is_none());
    assert!(it.collect_n(10).unwrap().is_empty());

    // A fresh iterator errors again through next_entry/collect_n too.
    assert!(db.scan(b"", None).unwrap().next_entry().is_err());
    assert!(db.scan(b"", None).unwrap().collect_n(5).is_err());
}

/// A refill failure after a head has been popped must not drop the
/// popped (already-resolved) entry: the merge delivers it first and
/// surfaces the error on the next pull — same behavior as a single
/// `Db`, which yields every resolved entry before the error.
#[test]
fn merge_refill_error_does_not_drop_resolved_entry() {
    let env: EnvRef = MemEnv::shared();
    let db = sharded(env.clone(), "iter-err-refill");

    // One shard is the "broken" one: its first entry in key order is a
    // small (inline, never fails) value that sorts before everything
    // else globally, followed by separated values whose files we
    // delete. All other shards hold only inline values.
    let broken = db.shard_of("z-000");
    let afirst = (0..1000)
        .map(|i| format!("a-{i:03}"))
        .find(|k| db.shard_of(k) == broken)
        .unwrap();
    let zkeys: Vec<String> = (0..1000)
        .map(|i| format!("z-{i:03}"))
        .filter(|k| db.shard_of(k) == broken)
        .take(3)
        .collect();
    let fillers: Vec<String> = (0..1000)
        .map(|i| format!("m-{i:03}"))
        .filter(|k| db.shard_of(k) != broken)
        .take(5)
        .collect();
    db.put(afirst.as_bytes(), b"inline".to_vec()).unwrap();
    for (n, z) in zkeys.iter().enumerate() {
        db.put(z.as_bytes(), value(n, 2048)).unwrap();
    }
    for f in &fillers {
        db.put(f.as_bytes(), b"inline-too".to_vec()).unwrap();
    }
    db.flush().unwrap();
    delete_value_files(&env, &format!("iter-err-refill/shard-{broken:03}"));

    // Priming succeeds (the broken shard's head is the inline `afirst`).
    let mut it = db.scan(b"", None).unwrap();
    // The popped entry survives the failed refill behind it...
    let first = it.next().unwrap().unwrap();
    assert_eq!(
        first.key,
        afirst.clone().into_bytes(),
        "resolved entry was dropped"
    );
    // ...then the deferred refill error surfaces, and the iterator fuses.
    assert!(matches!(it.next(), Some(Err(_))));
    assert!(it.next().is_none());
    assert!(it.next_entry().unwrap().is_none());
}

#[test]
fn errored_shards_iterator_yields_err_then_fuses() {
    let env: EnvRef = MemEnv::shared();
    let db = sharded(env.clone(), "iter-err-shards");
    load(&db, 30);
    delete_value_files(&env, "iter-err-shards");

    // The merge iterator primes one head per shard at construction, so
    // with every shard broken the error can surface either at `scan`
    // (priming) or at the first pull — both satisfy the contract; if an
    // iterator was handed out, it must fuse after its first error.
    match db.scan(b"", None) {
        Err(_) => {}
        Ok(mut it) => {
            assert!(matches!(it.next(), Some(Err(_))));
            assert!(it.next().is_none(), "errored merge iterator must fuse");
            assert!(it.next_entry().unwrap().is_none());
        }
    }
}
