//! Generic engine-conformance suite: ONE test body, written purely
//! against the trait surface (`KvRead + KvWrite + Maintenance`, i.e.
//! [`Engine`]), instantiated for a single [`Db`] and a 4-shard
//! [`DbShards`] across the Scavenger, Titan, and Terark modes. Both
//! handles must produce identical observable results — gets, pinned
//! (view/snapshot) reads through the unified [`ReadOptions`], merged
//! scan order and contents, and post-GC state — which is what makes the
//! trait surface "write once, run on every backend".

use scavenger::{
    Db, DbShards, Engine, EngineMode, MemEnv, Options, PinnedReader, ReadOptions, ReadPin,
    ShardedOptions, Transactional, WriteBatch, WriteOptions,
};

fn key(i: usize) -> String {
    format!("key{i:04}")
}

fn value(i: usize, len: usize) -> Vec<u8> {
    let mut v = vec![(i % 251) as u8; len];
    v[0] = (i >> 8) as u8;
    v[1] = (i & 0xff) as u8;
    v
}

fn single(dir: &str, mode: EngineMode) -> Db {
    Options::builder(MemEnv::shared(), dir, mode)
        .memtable_size(8 * 1024)
        .vsst_target_size(32 * 1024)
        .base_level_bytes(64 * 1024)
        .ksst_target_size(16 * 1024)
        .auto_gc(false)
        .open()
        .unwrap()
}

fn sharded(dir: &str, mode: EngineMode) -> DbShards {
    ShardedOptions::builder(MemEnv::shared(), dir, mode)
        .num_shards(4)
        .memtable_size(8 * 1024)
        .vsst_target_size(32 * 1024)
        .base_level_bytes(64 * 1024)
        .ksst_target_size(16 * 1024)
        .auto_gc(false)
        .open()
        .unwrap()
}

/// Everything the generic driver can observe about an engine: latest
/// values, pinned-epoch values (three read paths each for the view and
/// the snapshot), scans, and post-GC latest state.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    latest_gets: Vec<(String, Option<Vec<u8>>)>,
    view_gets: Vec<Option<Vec<u8>>>,
    view_gets_with: Vec<Option<Vec<u8>>>,
    snap_gets: Vec<Option<Vec<u8>>>,
    snap_gets_with: Vec<Option<Vec<u8>>>,
    view_scan: Vec<(Vec<u8>, Vec<u8>)>,
    full_scan: Vec<(Vec<u8>, Vec<u8>)>,
    bounded_scan: Vec<(Vec<u8>, Vec<u8>)>,
    cold_scan: Vec<(Vec<u8>, Vec<u8>)>,
    post_gc_gets: Vec<(String, Option<Vec<u8>>)>,
}

/// Drain an engine iterator through its `Iterator` impl.
fn drain<I: Iterator<Item = scavenger::Result<scavenger::ScanEntry>>>(
    it: I,
) -> Vec<(Vec<u8>, Vec<u8>)> {
    it.map(|e| {
        let e = e.unwrap();
        (e.key, e.value.to_vec())
    })
    .collect()
}

/// The one generic suite. Every call in here goes through the trait
/// surface; no `Db`-vs-`DbShards` branching anywhere.
fn drive<E>(db: &E) -> Observation
where
    E: Engine,
    for<'a> &'a E::View: Into<ReadPin<'a>>,
    for<'a> &'a E::Snap: Into<ReadPin<'a>>,
{
    // Epoch 0: 80 keys, large enough to separate in KV-separated modes.
    for i in 0..80 {
        db.put(key(i).as_bytes(), value(i, 2048).into()).unwrap();
    }
    db.flush().unwrap();

    // Pin the epoch both ways.
    let view = db.view();
    let snap = db.snapshot();

    // Churn: overwrites, deletes, and a mixed batch (split per shard on
    // the sharded handle — per-shard atomicity documented on
    // `KvWrite::write`), then expose garbage and collect it.
    for round in 1..=3 {
        for i in 0..80 {
            db.put(key(i).as_bytes(), value(round * 100 + i, 2048).into())
                .unwrap();
        }
        db.flush().unwrap();
    }
    for i in (0..80).step_by(9) {
        db.delete(key(i).as_bytes()).unwrap();
    }
    let mut batch = WriteBatch::new();
    for i in 200..216 {
        batch.put(key(i), scavenger::Bytes::from(value(i, 700)));
    }
    batch.delete(key(201));
    db.write(batch).unwrap();
    let nosync = WriteOptions {
        sync: false,
        ..WriteOptions::default()
    };
    db.put_with(&nosync, key(216).as_bytes(), value(216, 700).into())
        .unwrap();
    db.flush().unwrap();
    db.compact_all().unwrap();

    // GC through the normalized report. Titan defers write-back GC while
    // snapshots exist, so don't assert it ran here — only that the
    // report is internally consistent.
    let report = db.run_gc().unwrap();
    assert_eq!(report.jobs(), report.outcomes.iter().flatten().count());
    assert_eq!(report.ran(), report.jobs() > 0);
    db.run_gc_until_clean().unwrap();

    // The pinned epoch, read three ways per pin: directly through the
    // `PinnedReader` surface, and via `get_with` through the `ReadPin`.
    let view_gets = (0..80)
        .map(|i| view.get(key(i).as_bytes()).unwrap().map(|b| b.to_vec()))
        .collect();
    let view_gets_with = (0..80)
        .map(|i| {
            db.get_with(&ReadOptions::pinned(&view), key(i).as_bytes())
                .unwrap()
                .map(|b| b.to_vec())
        })
        .collect();
    let snap_gets = (0..80)
        .map(|i| snap.get(key(i).as_bytes()).unwrap().map(|b| b.to_vec()))
        .collect();
    let snap_gets_with = (0..80)
        .map(|i| {
            db.get_with(&ReadOptions::pinned(&snap), key(i).as_bytes())
                .unwrap()
                .map(|b| b.to_vec())
        })
        .collect();
    let view_scan = drain(view.scan(b"key0000", Some(b"key0010")).unwrap());

    // Release the pins: Titan's deferred jobs may now run.
    drop(view);
    drop(snap);
    db.run_gc_until_clean().unwrap();

    let latest_gets = (0..80)
        .map(|i| {
            (
                key(i),
                db.get(key(i).as_bytes()).unwrap().map(|b| b.to_vec()),
            )
        })
        .collect();
    let full_scan = drain(db.scan(b"", None).unwrap());
    let bounded_scan = drain(
        db.scan_with(&ReadOptions {
            lower_bound: Some(key(40).into_bytes()),
            upper_bound: Some(key(60).into_bytes()),
            ..ReadOptions::default()
        })
        .unwrap(),
    );
    let cold_scan = drain(
        db.scan_with(&ReadOptions {
            lower_bound: Some(key(200).into_bytes()),
            fill_cache: false,
            ..ReadOptions::default()
        })
        .unwrap(),
    );
    let post_gc_gets = (200..217)
        .map(|i| {
            (
                key(i),
                db.get(key(i).as_bytes()).unwrap().map(|b| b.to_vec()),
            )
        })
        .collect();

    // Introspection sanity through the Maintenance trait.
    let stats = db.stats();
    assert!(stats.flushes > 0, "flushes must be counted");
    assert!(stats.space.total() > 0, "stats.space must be populated");
    assert!(db.space().total() > 0, "space() must be populated");

    Observation {
        latest_gets,
        view_gets,
        view_gets_with,
        snap_gets,
        snap_gets_with,
        view_scan,
        full_scan,
        bounded_scan,
        cold_scan,
        post_gc_gets,
    }
}

/// Acceptance: the single generic suite runs over `Db` and a 4-shard
/// `DbShards` in Scavenger, Titan, and Terark modes, and the two
/// handles observe identical results everywhere.
#[test]
fn conformance_db_and_4shard_dbshards_match() {
    for mode in [EngineMode::Scavenger, EngineMode::Titan, EngineMode::Terark] {
        let s = drive(&single(&format!("conf-single-{mode:?}"), mode));
        let m = drive(&sharded(&format!("conf-sharded-{mode:?}"), mode));
        assert_eq!(
            s.latest_gets, m.latest_gets,
            "{mode:?}: latest gets diverged"
        );
        assert_eq!(s.view_gets, m.view_gets, "{mode:?}: view gets diverged");
        assert_eq!(
            s.view_gets_with, m.view_gets_with,
            "{mode:?}: view get_with diverged"
        );
        assert_eq!(s.snap_gets, m.snap_gets, "{mode:?}: snapshot gets diverged");
        assert_eq!(
            s.snap_gets_with, m.snap_gets_with,
            "{mode:?}: snapshot get_with diverged"
        );
        assert_eq!(s.view_scan, m.view_scan, "{mode:?}: view scan diverged");
        assert_eq!(s.full_scan, m.full_scan, "{mode:?}: full scan diverged");
        assert_eq!(
            s.bounded_scan, m.bounded_scan,
            "{mode:?}: bounded scan diverged"
        );
        assert_eq!(s.cold_scan, m.cold_scan, "{mode:?}: cold scan diverged");
        assert_eq!(
            s.post_gc_gets, m.post_gc_gets,
            "{mode:?}: post-GC gets diverged"
        );

        // Within each handle, every read path over the same pin agrees.
        assert_eq!(s.view_gets, s.view_gets_with);
        assert_eq!(s.view_gets, s.snap_gets);
        assert_eq!(s.snap_gets, s.snap_gets_with);
        // The pinned epoch is epoch 0, fully intact.
        for (i, got) in s.view_gets.iter().enumerate() {
            assert_eq!(
                got.as_deref(),
                Some(value(i, 2048).as_slice()),
                "{mode:?}: pinned epoch lost {}",
                key(i)
            );
        }
    }
}

/// Pins are typed: handing a pin from the other engine flavor to a
/// handle is an error, never a silent misread.
#[test]
fn wrong_flavor_pins_are_rejected() {
    let db = single("wrongpin-single", EngineMode::Scavenger);
    let shards = sharded("wrongpin-sharded", EngineMode::Scavenger);
    db.put("k", b"v".to_vec()).unwrap();
    shards.put("k", b"v".to_vec()).unwrap();

    let sview = shards.view();
    let ssnap = shards.snapshot();
    assert!(db.get_with(&ReadOptions::pinned(&sview), "k").is_err());
    assert!(db.get_with(&ReadOptions::pinned(&ssnap), "k").is_err());
    assert!(db.scan_with(&ReadOptions::pinned(&sview)).is_err());

    let view = db.view();
    let snap = db.snapshot();
    assert!(shards.get_with(&ReadOptions::pinned(&view), "k").is_err());
    assert!(shards.get_with(&ReadOptions::pinned(&snap), "k").is_err());
    assert!(shards.scan_with(&ReadOptions::pinned(&view)).is_err());
}

/// Everything the generic driver can observe about an engine's
/// transaction surface. Same discipline as [`Observation`]: purely
/// trait-level, no handle-specific branching.
#[derive(Debug, PartialEq, Eq)]
struct TxnObservation {
    /// Latest values after a committed multi-key transaction.
    committed_gets: Vec<(String, Option<Vec<u8>>)>,
    /// Latest values after a rolled-back transaction (must be untouched).
    rollback_gets: Vec<(String, Option<Vec<u8>>)>,
    /// A write-write conflict (read key overwritten mid-txn) aborted.
    ww_conflicted: bool,
    /// A read-write conflict (read-set key moved; txn wrote elsewhere)
    /// aborted.
    rw_conflicted: bool,
    /// Values an in-flight transaction read while concurrent raw writes
    /// churned the same keys: its begin-time snapshot plus its own
    /// buffered writes.
    si_reads: Vec<Option<Vec<u8>>>,
    /// Scan inside a transaction: begin-time base overlaid with the
    /// transaction's own puts and deletes.
    txn_scan: Vec<(Vec<u8>, Vec<u8>)>,
    /// (commits, conflicts) growth observed via `stats()`.
    counters: (u64, u64),
}

/// The generic transaction suite: commit visibility, rollback
/// invisibility, W-W and R-W conflicts, snapshot-isolation reads — one
/// body for both handles.
fn drive_txn<E>(db: &E) -> TxnObservation
where
    E: Engine + Transactional,
{
    for i in 0..20 {
        db.put(key(i).as_bytes(), value(i, 256).into()).unwrap();
    }
    let base = db.stats();

    // Commit visibility: a multi-key read-modify-write transaction
    // (keys straddle shards on the sharded handle) lands atomically.
    let mut t = db.begin();
    let seen = t.get(key(0).as_bytes()).unwrap().unwrap();
    assert_eq!(seen.as_ref(), value(0, 256).as_slice());
    t.put(key(100).as_bytes(), value(100, 300));
    t.put(key(101).as_bytes(), value(101, 300));
    t.delete(key(1).as_bytes());
    let receipt = t.commit().unwrap();
    assert!(receipt.synced, "default commit is durable");
    let committed_gets = [0, 1, 100, 101]
        .into_iter()
        .map(|i| {
            (
                key(i),
                db.get(key(i).as_bytes()).unwrap().map(|b| b.to_vec()),
            )
        })
        .collect();

    // Rollback invisibility: buffered writes die with the transaction.
    let mut t = db.begin();
    t.put(key(102).as_bytes(), value(102, 300));
    t.delete(key(2).as_bytes());
    t.rollback();
    let rollback_gets = [2, 102]
        .into_iter()
        .map(|i| {
            (
                key(i),
                db.get(key(i).as_bytes()).unwrap().map(|b| b.to_vec()),
            )
        })
        .collect();

    // W-W conflict: the transaction read key 3, then a raw writer
    // overwrote it; the commit (which also writes key 3) must abort
    // with nothing written.
    let mut t = db.begin();
    let _ = t.get(key(3).as_bytes()).unwrap();
    db.put(key(3).as_bytes(), value(9003, 256).into()).unwrap();
    t.put(key(3).as_bytes(), value(7003, 256));
    t.put(key(103).as_bytes(), value(103, 256));
    let err = t.commit().expect_err("stale read-modify-write must abort");
    let ww_conflicted = err.is_txn_conflict();
    assert_eq!(
        db.get(key(3).as_bytes()).unwrap().unwrap().as_ref(),
        value(9003, 256).as_slice(),
        "aborted txn must write nothing"
    );
    assert!(
        db.get(key(103).as_bytes()).unwrap().is_none(),
        "aborted txn must write nothing, not even unconflicted keys"
    );

    // R-W conflict: the read set alone is validated — the transaction
    // never writes key 4, but having read it and committing elsewhere
    // must still abort once key 4 moves (no write skew on read keys).
    let mut t = db.begin();
    let _ = t.get(key(4).as_bytes()).unwrap();
    db.delete(key(4).as_bytes()).unwrap();
    t.put(key(104).as_bytes(), value(104, 256));
    let err = t.commit().expect_err("moved read-set key must abort");
    let rw_conflicted = err.is_txn_conflict();

    // Snapshot isolation: reads stay at begin time under concurrent
    // churn, the txn's own writes shadow them, and scan merges both.
    let mut t = db.begin();
    let pre = t.get(key(10).as_bytes()).unwrap();
    for i in 10..14 {
        db.put(key(i).as_bytes(), value(8000 + i, 256).into())
            .unwrap();
    }
    let mut si_reads = vec![pre];
    si_reads.push(t.get(key(10).as_bytes()).unwrap()); // begin-time, not 8010
    t.put(key(11).as_bytes(), value(7011, 256));
    si_reads.push(t.get(key(11).as_bytes()).unwrap()); // own write wins
    t.delete(key(12).as_bytes());
    si_reads.push(t.get(key(12).as_bytes()).unwrap()); // own delete wins
    let si_reads = si_reads
        .into_iter()
        .map(|b| b.map(|b| b.to_vec()))
        .collect();
    let txn_scan = t
        .scan(key(10).as_bytes(), Some(key(14).as_bytes()))
        .unwrap()
        .into_iter()
        .map(|e| (e.key, e.value.to_vec()))
        .collect();
    // Reading churned keys poisoned the read set; this commit conflicts
    // (counted below), leaving the raw writes in place.
    assert!(t
        .commit()
        .expect_err("churned read set must abort")
        .is_txn_conflict());

    let stats = db.stats();
    TxnObservation {
        committed_gets,
        rollback_gets,
        ww_conflicted,
        rw_conflicted,
        si_reads,
        txn_scan,
        counters: (
            stats.txn_commits - base.txn_commits,
            stats.txn_conflicts - base.txn_conflicts,
        ),
    }
}

/// Acceptance: the transaction suite observes identical results on a
/// single `Db` and a 4-shard `DbShards` in every mode, and the typed
/// counters agree.
#[test]
fn txn_conformance_db_and_4shard_dbshards_match() {
    for mode in [EngineMode::Scavenger, EngineMode::Titan, EngineMode::Terark] {
        let s = drive_txn(&single(&format!("txnconf-single-{mode:?}"), mode));
        let m = drive_txn(&sharded(&format!("txnconf-sharded-{mode:?}"), mode));
        assert_eq!(s, m, "{mode:?}: txn observations diverged");

        assert!(s.ww_conflicted, "{mode:?}: W-W conflict not typed");
        assert!(s.rw_conflicted, "{mode:?}: R-W conflict not typed");
        // Commit visibility and rollback invisibility, by value.
        assert_eq!(s.committed_gets[0].1.as_deref(), Some(&value(0, 256)[..]));
        assert_eq!(s.committed_gets[1].1, None, "txn delete must commit");
        assert_eq!(s.committed_gets[2].1.as_deref(), Some(&value(100, 300)[..]));
        assert_eq!(s.committed_gets[3].1.as_deref(), Some(&value(101, 300)[..]));
        assert_eq!(s.rollback_gets[0].1.as_deref(), Some(&value(2, 256)[..]));
        assert_eq!(s.rollback_gets[1].1, None, "rolled-back put leaked");
        // Snapshot isolation: begin-time value, then own write/delete.
        assert_eq!(s.si_reads[0].as_deref(), Some(&value(10, 256)[..]));
        assert_eq!(s.si_reads[1].as_deref(), Some(&value(10, 256)[..]));
        assert_eq!(s.si_reads[2].as_deref(), Some(&value(7011, 256)[..]));
        assert_eq!(s.si_reads[3], None);
        // Scan: keys 10 (base), 11 (own put), 13 (base); 12 deleted.
        assert_eq!(
            s.txn_scan,
            vec![
                (key(10).into_bytes(), value(10, 256)),
                (key(11).into_bytes(), value(7011, 256)),
                (key(13).into_bytes(), value(13, 256)),
            ],
            "{mode:?}: txn scan overlay wrong"
        );
        // 1 committed txn; 3 conflicted (W-W, R-W, churned-scan).
        assert_eq!(s.counters, (1, 3), "{mode:?}: txn counters wrong");
    }
}

/// `WriteBatch` (and the `Bytes` alias it uses) are reachable from the
/// crate root: `Db::write(WriteBatch)` works with no `scavenger-lsm`
/// or `bytes` dependency in the caller's manifest.
#[test]
fn write_batch_is_usable_from_crate_root() {
    let db = single("root-batch", EngineMode::Scavenger);
    let mut batch = scavenger::WriteBatch::new();
    batch.put("a", scavenger::Bytes::from(vec![1u8; 600]));
    batch.put("b", scavenger::Bytes::from_static(b"inline"));
    batch.delete("a");
    db.write(batch).unwrap();
    assert!(db.get("a").unwrap().is_none());
    assert_eq!(
        db.get("b").unwrap().unwrap(),
        scavenger::Bytes::from_static(b"inline")
    );
}
