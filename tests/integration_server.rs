//! End-to-end service-layer tests: real TCP connections against a
//! [`Server`] hosting either engine handle — a single [`Db`] and a
//! 4-shard [`DbShards`] — through ONE generic suite (the same
//! write-once-run-anywhere discipline as `engine_conformance`).
//!
//! Covered here, over actual sockets (no in-process shortcuts):
//! acked-write durability across graceful shutdown + reopen with four
//! concurrent clients, strict snapshot consistency under concurrent
//! writers, token-bucket rejection, pin-table TTL expiry, the
//! connection cap, and the `/metrics` endpoint (including per-shard
//! I/O attribution).

use scavenger::{Bytes, Db, DbShards, EngineMode, MemEnv, Options, ShardedOptions, WriteOptions};
use scavenger_server::{
    is_pin_expired, is_rate_limited, scrape_metrics, Client, ServeEngine, Server, ServerConfig,
    SubscribeSpec, WireChange,
};
use scavenger_workload::ops::{AckOracle, ClientOp, OpMix, OpStream};
use std::time::Duration;

const CLIENTS: u64 = 4;
const OPS_PER_CLIENT: u64 = 250;
const STRIPE: u64 = 500;

fn small_cfg() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        ..ServerConfig::default()
    }
}

/// Drive one client over TCP with its deterministic stream; every
/// acked op goes into the returned oracle.
fn drive(addr: std::net::SocketAddr, client_id: u64) -> AckOracle {
    let mut client = Client::connect(addr).expect("connect");
    let mut stream = OpStream::new(7, client_id, STRIPE, OpMix::write_heavy());
    let mut oracle = AckOracle::new();
    for _ in 0..OPS_PER_CLIENT {
        let op = stream.next_op();
        let acked = match &op {
            ClientOp::Get { key } => client.get(key).is_ok(),
            ClientOp::Put { key, value } => client.put(key, value).is_ok(),
            ClientOp::Delete { key } => client.delete(key).is_ok(),
            ClientOp::Scan { lo, limit } => client.scan(None, lo, None, *limit).is_ok(),
        };
        assert!(acked, "unlimited server rejected {}", op.label());
        oracle.ack(&op);
    }
    oracle
}

/// Acked writes from 4 concurrent TCP clients must be readable from
/// the reopened engine after a graceful shutdown.
fn durability_across_shutdown<E: ServeEngine>(engine: E, reopen: impl FnOnce() -> E)
where
    E::Snap: Send + Sync,
    E::View: Send,
{
    let handle = Server::start(engine, small_cfg()).expect("start server");
    let addr = handle.addr();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|id| std::thread::spawn(move || drive(addr, id)))
        .collect();
    let oracles: Vec<AckOracle> = workers.into_iter().map(|w| w.join().unwrap()).collect();
    // Graceful drain: joins every connection, drops pins, flushes.
    handle.shutdown_and_wait();

    let db = reopen();
    for (id, oracle) in oracles.iter().enumerate() {
        assert!(oracle.acked_writes() > 0, "client {id} never wrote");
        let checked = oracle
            .check(|key| db.get(key).unwrap().map(|b| b.as_ref().to_vec()))
            .unwrap_or_else(|e| panic!("client {id}: {e}"));
        assert!(checked > 0);
    }
}

/// A pinned snapshot must keep answering with its frozen state no
/// matter how hard concurrent clients overwrite the same keys.
fn snapshot_strict_consistency<E: ServeEngine>(engine: E)
where
    E::Snap: Send + Sync,
    E::View: Send,
{
    let handle = Server::start(engine, small_cfg()).expect("start server");
    let addr = handle.addr();
    let mut setup = Client::connect(addr).unwrap();
    for i in 0..20u32 {
        setup
            .put(format!("snapkey{i:02}").as_bytes(), b"frozen")
            .unwrap();
    }
    let snap = setup.snap_open().unwrap();

    let writer_done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer_flag = writer_done.clone();
    let writer = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        for round in 0..50u32 {
            for i in 0..20u32 {
                c.put(
                    format!("snapkey{i:02}").as_bytes(),
                    format!("overwrite-{round}").as_bytes(),
                )
                .unwrap();
            }
        }
        writer_flag.store(true, std::sync::atomic::Ordering::SeqCst);
    });

    let mut reader = Client::connect(addr).unwrap();
    let mut saw_live_change = false;
    while !writer_done.load(std::sync::atomic::Ordering::SeqCst) {
        // Pinned reads: always the frozen value.
        let v = reader.get_pinned(snap, b"snapkey07").unwrap();
        assert_eq!(v.as_deref(), Some(&b"frozen"[..]), "snapshot read moved");
        // Pinned scan: every entry still frozen, all 20 present.
        let entries = reader
            .scan(Some(snap), b"snapkey", Some(b"snapkez"), 0)
            .unwrap();
        assert_eq!(entries.len(), 20);
        assert!(entries.iter().all(|(_, v)| v == b"frozen"));
        // Unpinned reads observe the writer eventually.
        if reader.get(b"snapkey07").unwrap().as_deref() != Some(&b"frozen"[..]) {
            saw_live_change = true;
        }
    }
    writer.join().unwrap();
    assert!(saw_live_change, "live reads never saw the writer");
    // After the dust settles the pin still answers with day-one state.
    assert_eq!(
        reader.get_pinned(snap, b"snapkey00").unwrap().as_deref(),
        Some(&b"frozen"[..])
    );
    reader.snap_close(snap).unwrap();
    let err = reader.get_pinned(snap, b"snapkey00").unwrap_err();
    assert!(is_pin_expired(&err), "closed pin should be gone: {err}");
    handle.shutdown_and_wait();
}

/// An empty token bucket must reject with a typed RATE_LIMITED error,
/// and the connection must remain usable afterwards.
fn rate_limiter_rejects<E: ServeEngine>(engine: E)
where
    E::Snap: Send + Sync,
    E::View: Send,
{
    let cfg = ServerConfig {
        global_rate: 20.0,
        global_burst: 5.0,
        ..small_cfg()
    };
    let handle = Server::start(engine, cfg).expect("start server");
    let mut client = Client::connect(handle.addr()).unwrap();
    let mut rejected = 0;
    let mut accepted = 0;
    for i in 0..60u32 {
        match client.put(format!("rl{i:02}").as_bytes(), b"x") {
            Ok(_) => accepted += 1,
            Err(e) => {
                assert!(is_rate_limited(&e), "unexpected error class: {e}");
                rejected += 1;
            }
        }
    }
    assert!(accepted >= 5, "burst should admit at least the bucket size");
    assert!(rejected > 0, "60 rapid writes never tripped a 20/s limit");
    // Throttled, not broken: the connection still serves pings and the
    // counter shows up in metrics.
    client.ping().unwrap();
    assert_eq!(
        handle
            .metrics()
            .rate_limited
            .load(std::sync::atomic::Ordering::Relaxed),
        rejected
    );
    handle.shutdown_and_wait();
}

/// Idle pins expire after the TTL and come back as PIN_EXPIRED.
fn pin_ttl_expires<E: ServeEngine>(engine: E)
where
    E::Snap: Send + Sync,
    E::View: Send,
{
    let cfg = ServerConfig {
        pin_ttl: Duration::from_millis(100),
        ..small_cfg()
    };
    let handle = Server::start(engine, cfg).expect("start server");
    let mut client = Client::connect(handle.addr()).unwrap();
    client.put(b"ttl-key", b"v").unwrap();
    let snap = client.snap_open().unwrap();
    assert!(client.get_pinned(snap, b"ttl-key").unwrap().is_some());
    std::thread::sleep(Duration::from_millis(300));
    let err = client.get_pinned(snap, b"ttl-key").unwrap_err();
    assert!(is_pin_expired(&err), "expected TTL expiry, got: {err}");
    handle.shutdown_and_wait();
}

/// Connections beyond the cap get a typed CONN_LIMIT error frame.
fn connection_cap_rejects<E: ServeEngine>(engine: E)
where
    E::Snap: Send + Sync,
    E::View: Send,
{
    let cfg = ServerConfig {
        max_conns: 2,
        ..small_cfg()
    };
    let handle = Server::start(engine, cfg).expect("start server");
    let mut a = Client::connect(handle.addr()).unwrap();
    let mut b = Client::connect(handle.addr()).unwrap();
    a.ping().unwrap();
    b.ping().unwrap();
    // Third connection: accepted at the TCP level, then told why it is
    // being turned away.
    let mut c = Client::connect(handle.addr()).unwrap();
    let err = c.ping().unwrap_err();
    assert!(
        err.to_string().contains("connection limit"),
        "expected connection-cap rejection, got: {err}"
    );
    // The admitted connections are unaffected.
    a.ping().unwrap();
    b.ping().unwrap();
    assert!(
        handle
            .metrics()
            .conns_rejected
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1
    );
    handle.shutdown_and_wait();
}

/// The /metrics endpoint serves engine + per-shard + server series.
fn metrics_endpoint_serves<E: ServeEngine>(engine: E, want_shards: usize)
where
    E::Snap: Send + Sync,
    E::View: Send,
{
    let cfg = ServerConfig {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..small_cfg()
    };
    let handle = Server::start(engine, cfg).expect("start server");
    let mut client = Client::connect(handle.addr()).unwrap();
    for i in 0..50u32 {
        client
            .put(format!("mkey{i:03}").as_bytes(), &[7u8; 256])
            .unwrap();
    }
    client.flush().unwrap();
    let _ = client.get(b"mkey007").unwrap();
    let snap = client.snap_open().unwrap();

    let text = scrape_metrics(handle.metrics_addr().unwrap()).expect("scrape");
    // Engine series.
    assert!(text.contains("scavenger_gc_runs_total"), "missing gc stats");
    assert!(
        text.contains("scavenger_space_bytes"),
        "missing space stats"
    );
    // Per-shard I/O attribution: one series set per member.
    assert!(text.contains(&format!("scavenger_shard_count {want_shards}")));
    for shard in 0..want_shards {
        assert!(
            text.contains(&format!("shard=\"{shard}\"")),
            "missing I/O series for shard {shard}"
        );
    }
    // Server series, reflecting the traffic just sent.
    assert!(text.contains("scavenger_server_connections_active 1"));
    assert!(text.contains("scavenger_server_pinned_snapshots 1"));
    assert!(text.contains("op=\"put\",quantile=\"0.99\""));
    // The wire Stats request returns the same exposition text shape.
    let wire_text = client.stats().unwrap();
    assert!(wire_text.contains("scavenger_server_requests_total"));

    client.snap_close(snap).unwrap();
    handle.shutdown_and_wait();
}

// ---------------- change streams ----------------

/// Per-shard sequence numbers must be strictly increasing across the
/// delivered events (the wire contract: gap-free, ordered history).
fn assert_shard_ordered(events: &[WireChange]) {
    let mut last: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for e in events {
        if let Some(prev) = last.insert(e.shard, e.seq) {
            assert!(
                e.seq > prev,
                "shard {} went backwards: {} after {}",
                e.shard,
                e.seq,
                prev
            );
        }
    }
}

/// Subscribe-from-oldest replays exactly the committed history, a
/// subsequent poll tails only new writes, and a closed stream id
/// answers PIN_EXPIRED.
fn change_stream_over_the_wire<E: ServeEngine>(engine: E)
where
    E::Snap: Send + Sync,
    E::View: Send,
{
    let opts = WriteOptions::default();
    for i in 0..40u32 {
        engine
            .put_with(
                &opts,
                format!("cdc{i:03}").as_bytes(),
                Bytes::from(vec![i as u8; 8]),
            )
            .unwrap();
    }
    engine.delete_with(&opts, b"cdc000").unwrap();

    let handle = Server::start(engine.clone(), small_cfg()).expect("start server");
    let mut client = Client::connect(handle.addr()).unwrap();
    let stream = client.subscribe_changes(SubscribeSpec::Oldest).unwrap();
    let batch = client.poll_changes(stream, 0).unwrap();
    assert_eq!(batch.events.len(), 41, "full history: 40 puts + 1 delete");
    assert_eq!(batch.lag, 0, "drained stream should report zero lag");
    assert_shard_ordered(&batch.events);
    let puts: Vec<_> = batch.events.iter().filter(|e| e.value.is_some()).collect();
    let dels: Vec<_> = batch.events.iter().filter(|e| e.value.is_none()).collect();
    assert_eq!(puts.len(), 40);
    assert_eq!(dels.len(), 1);
    assert_eq!(dels[0].key, b"cdc000");
    for e in &puts {
        let i: u8 = String::from_utf8_lossy(&e.key[3..]).parse::<u32>().unwrap() as u8;
        assert_eq!(e.value.as_deref(), Some(&[i; 8][..]));
    }

    // Caught up: an idle poll returns an empty batch, not an error.
    assert!(client.poll_changes(stream, 0).unwrap().events.is_empty());

    // Tail live writes through the server.
    client.put(b"cdc-live", b"tail").unwrap();
    let live = client.poll_changes(stream, 0).unwrap();
    assert_eq!(live.events.len(), 1);
    assert_eq!(live.events[0].key, b"cdc-live");
    assert_eq!(live.events[0].value.as_deref(), Some(&b"tail"[..]));

    client.close_stream(stream).unwrap();
    let err = client.poll_changes(stream, 0).unwrap_err();
    assert!(is_pin_expired(&err), "closed stream should be gone: {err}");
    handle.shutdown_and_wait();
}

/// A client that disconnects mid-stream resumes from its last chunk's
/// token on a brand-new connection without losing or repeating events.
fn change_stream_resumes_via_token<E: ServeEngine>(engine: E)
where
    E::Snap: Send + Sync,
    E::View: Send,
{
    let opts = WriteOptions::default();
    for i in 0..60u32 {
        engine
            .put_with(
                &opts,
                format!("res{i:03}").as_bytes(),
                Bytes::from(vec![1u8]),
            )
            .unwrap();
    }

    let handle = Server::start(engine.clone(), small_cfg()).expect("start server");

    // First client: take a bounded bite, keep the resume token.
    let mut first = Client::connect(handle.addr()).unwrap();
    let s1 = first.subscribe_changes(SubscribeSpec::Oldest).unwrap();
    let head = first.poll_changes(s1, 25).unwrap();
    assert_eq!(head.events.len(), 25);
    assert!(head.lag > 0, "25 of 60 delivered, lag must be visible");
    let token = head.resume.clone();
    drop(first); // connection lost; server-side stream left to its TTL

    // Second client: resume from the token, drain the rest.
    let mut second = Client::connect(handle.addr()).unwrap();
    let s2 = second
        .subscribe_changes(SubscribeSpec::Token(token))
        .unwrap();
    let tail = second.poll_changes(s2, 0).unwrap();
    assert_eq!(
        head.events.len() + tail.events.len(),
        60,
        "resume must neither lose nor repeat"
    );
    let mut keys: Vec<Vec<u8>> = head
        .events
        .iter()
        .chain(tail.events.iter())
        .map(|e| e.key.clone())
        .collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), 60, "duplicate or missing keys across resume");
    assert_shard_ordered(&tail.events);

    // A garbage token is a typed error, not a hung stream.
    assert!(second
        .subscribe_changes(SubscribeSpec::Token(vec![9, 9, 9]))
        .is_err());
    second.close_stream(s2).unwrap();
    handle.shutdown_and_wait();
}

/// Streamed chunks pay rate-limit tokens. A backlogged poll on a
/// throttled connection is truncated (short batch, `lag > 0`) instead
/// of erroring — and because chunks are charged *before* events leave
/// the cursor, patient re-polls still deliver every event exactly
/// once. Scans pay per chunk too, and trip the usual RATE_LIMITED.
fn change_chunks_pay_rate_tokens<E: ServeEngine>(engine: E)
where
    E::Snap: Send + Sync,
    E::View: Send,
{
    let opts = WriteOptions::default();
    for i in 0..64u32 {
        engine
            .put_with(
                &opts,
                format!("tok{i:03}").as_bytes(),
                Bytes::from(vec![2u8]),
            )
            .unwrap();
    }
    let cfg = ServerConfig {
        conn_rate: 4.0,
        conn_burst: 3.0,
        scan_chunk: 4,
        ..small_cfg()
    };
    let handle = Server::start(engine.clone(), cfg).expect("start server");
    let mut client = Client::connect(handle.addr()).unwrap();
    let stream = client.subscribe_changes(SubscribeSpec::Oldest).unwrap();

    // 64 events / 4-per-chunk needs 16 chunk tokens; the bucket holds
    // 3, so the first greedy poll must come back truncated.
    let first = client.poll_changes(stream, 0).unwrap();
    assert!(
        first.events.len() < 64,
        "a 3-token bucket let {} events through",
        first.events.len()
    );
    assert!(first.lag > 0, "truncated poll must advertise its backlog");
    assert!(
        handle
            .metrics()
            .rate_limited
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "throttled chunks must be counted"
    );

    // Patient re-polls drain the rest without loss or duplication.
    let mut got: Vec<WireChange> = first.events;
    let mut stalls = 0;
    while got.len() < 64 && stalls < 100 {
        match client.poll_changes(stream, 4) {
            Ok(batch) if batch.events.is_empty() => {
                stalls += 1;
                std::thread::sleep(Duration::from_millis(100));
            }
            Ok(batch) => got.extend(batch.events),
            Err(e) if is_rate_limited(&e) => {
                stalls += 1;
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => panic!("unexpected error draining stream: {e}"),
        }
    }
    assert_eq!(got.len(), 64, "throttled polls lost or duplicated events");
    assert_shard_ordered(&got);
    let mut keys: Vec<Vec<u8>> = got.iter().map(|e| e.key.clone()).collect();
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), 64);

    // Scans pay per chunk too: wide scans on a drained bucket trip the
    // limiter (scans have no cursor to truncate, so they error).
    let mut tripped = false;
    for _ in 0..5 {
        match client.scan(None, b"tok", None, 0) {
            Err(e) if is_rate_limited(&e) => {
                tripped = true;
                break;
            }
            _ => {}
        }
    }
    assert!(
        tripped,
        "64-key scan in 4-entry chunks never hit the bucket"
    );
    client.close_stream(stream).unwrap();
    handle.shutdown_and_wait();
}

// ---------------- instantiations ----------------

fn open_db(env: scavenger::EnvRef, dir: &str) -> Db {
    Options::builder(env, dir, EngineMode::Scavenger)
        .memtable_size(32 * 1024)
        .open()
        .unwrap()
}

fn open_shards(env: scavenger::EnvRef, dir: &str) -> DbShards {
    ShardedOptions::builder(env, dir, EngineMode::Scavenger)
        .num_shards(4)
        .memtable_size(32 * 1024)
        .open()
        .unwrap()
}

#[test]
fn durability_single_db() {
    let env = MemEnv::shared();
    let reopen_env = env.clone();
    durability_across_shutdown(open_db(env, "srv-dur"), move || {
        open_db(reopen_env, "srv-dur")
    });
}

#[test]
fn durability_sharded() {
    let env = MemEnv::shared();
    let reopen_env = env.clone();
    durability_across_shutdown(open_shards(env, "srv-dur-sh"), move || {
        open_shards(reopen_env, "srv-dur-sh")
    });
}

#[test]
fn snapshot_consistency_single_db() {
    snapshot_strict_consistency(open_db(MemEnv::shared(), "srv-snap"));
}

#[test]
fn snapshot_consistency_sharded() {
    snapshot_strict_consistency(open_shards(MemEnv::shared(), "srv-snap-sh"));
}

#[test]
fn rate_limit_single_db() {
    rate_limiter_rejects(open_db(MemEnv::shared(), "srv-rl"));
}

#[test]
fn rate_limit_sharded() {
    rate_limiter_rejects(open_shards(MemEnv::shared(), "srv-rl-sh"));
}

#[test]
fn pin_ttl_single_db() {
    pin_ttl_expires(open_db(MemEnv::shared(), "srv-ttl"));
}

#[test]
fn pin_ttl_sharded() {
    pin_ttl_expires(open_shards(MemEnv::shared(), "srv-ttl-sh"));
}

#[test]
fn conn_cap_single_db() {
    connection_cap_rejects(open_db(MemEnv::shared(), "srv-cap"));
}

#[test]
fn metrics_single_db() {
    metrics_endpoint_serves(open_db(MemEnv::shared(), "srv-met"), 1);
}

#[test]
fn change_stream_single_db() {
    change_stream_over_the_wire(open_db(MemEnv::shared(), "srv-cdc"));
}

#[test]
fn change_stream_sharded() {
    change_stream_over_the_wire(open_shards(MemEnv::shared(), "srv-cdc-sh"));
}

#[test]
fn change_stream_resume_single_db() {
    change_stream_resumes_via_token(open_db(MemEnv::shared(), "srv-cdc-res"));
}

#[test]
fn change_stream_resume_sharded() {
    change_stream_resumes_via_token(open_shards(MemEnv::shared(), "srv-cdc-res-sh"));
}

#[test]
fn change_chunk_rate_limit_single_db() {
    change_chunks_pay_rate_tokens(open_db(MemEnv::shared(), "srv-cdc-rl"));
}

#[test]
fn change_chunk_rate_limit_sharded() {
    change_chunks_pay_rate_tokens(open_shards(MemEnv::shared(), "srv-cdc-rl-sh"));
}

#[test]
fn metrics_sharded() {
    metrics_endpoint_serves(open_shards(MemEnv::shared(), "srv-met-sh"), 4);
}
